"""Per-shard state capture and the deterministic cross-shard merge.

One module owns the *shape* of the federation-state snapshot — the
structure the perf harness has asserted bit-identical between every
delivery engine and the seed loop since PR 2 — so the single-process
snapshot (:func:`federation_state`) and the sharded engine's merged
snapshot (:func:`merge_shard_results`) can never drift apart: both are
built from the same per-instance capture helpers.

Ownership argument (why the merge is exact):

* *Events and remote posts* arise only from deliveries **to** an
  instance, and every batch targets one domain, so the shard owning that
  domain sees the instance's complete delivery stream in stream order.
  Captured maps from different shards are disjoint and their union is
  total.
* *Peers* grow on **both** sides of a delivery
  (:meth:`~repro.fediverse.registry.FediverseRegistry.federate_normalised`),
  so a worker would under-report the origin side of cross-shard batches.
  The coordinator instead derives the delivered (origin, target) pairs
  straight from the batch stream — exactly the pairs the single-process
  engine records, since peer bookkeeping happens per batch regardless of
  the moderation outcome — and unions them onto the pre-delivery peer
  sets.  Peer sets only ever grow and are compared sorted, so the union
  is order-insensitive.
* *Stats* are plain counters and sum across shards; ground truth and the
  generation-side counters are planted before federation and never
  touched by delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.activitypub.delivery import FederationStats
    from repro.fediverse.instance import Instance
    from repro.synth.generator import PreparedFediverse


def capture_events(instance: "Instance") -> tuple:
    """Snapshot one instance's moderation-event stream (order-preserving)."""
    return tuple(
        (
            event.timestamp,
            event.moderating_domain,
            event.origin_domain,
            event.policy,
            event.action,
            event.activity_type,
            event.accepted,
            event.reason,
        )
        for event in instance.mrf.events
    )


def capture_remote_posts(instance: "Instance") -> tuple:
    """Snapshot one instance's accepted remote-post state (sorted by id).

    Activity ids are process-global-counter-based and differ between runs
    (and between a forked worker and the coordinator), so only the
    value-bearing post fields are captured.
    """
    return tuple(
        (
            post_id,
            post.visibility.value,
            post.sensitive,
            len(post.attachments),
            tuple(sorted(post.extra.items())),
        )
        for post_id, post in sorted(instance.remote_posts.items())
    )


def capture_engagement(instance: "Instance") -> tuple:
    """Snapshot one instance's received boost/favourite counters.

    Sorted by object URI; instances that received no engagement capture an
    empty tuple, so Create-only runs keep the pre-protocol snapshot shape.
    Engagement arises only from deliveries **to** an instance, so the
    ownership argument that makes events/remote-posts merges exact covers
    it too.
    """
    boosts = instance.boosts
    favourites = instance.favourites
    if not boosts and not favourites:
        return ()
    uris = sorted(set(boosts) | set(favourites))
    return tuple(
        (uri, boosts.get(uri, 0), favourites.get(uri, 0)) for uri in uris
    )


def delivery_stats_tuple(stats: "FederationStats") -> tuple:
    """Snapshot the aggregate delivery counters."""
    return (
        stats.delivered,
        stats.accepted,
        stats.rejected,
        stats.modified,
        tuple(sorted(stats.by_policy.items())),
    )


@dataclass
class ShardResult:
    """Everything one shard's worker sends back to the coordinator.

    Plain dicts, tuples and ints throughout, so the result pickles cleanly
    through a :mod:`multiprocessing` pipe.
    """

    shard: int
    delivered: int = 0
    rejected: int = 0
    batch_rejects: int = 0
    batch_rewrites: int = 0
    #: ``(delivered, accepted, rejected, modified, by_policy_items)``.
    stats: tuple = (0, 0, 0, 0, ())
    #: Owned domain -> captured moderation-event stream.
    events: dict[str, tuple] = field(default_factory=dict)
    #: Owned domain -> captured remote-post state.
    remote_posts: dict[str, tuple] = field(default_factory=dict)
    #: Owned domain -> captured boost/favourite counters.
    engagement: dict[str, tuple] = field(default_factory=dict)


def valid_shard_result(payload: object, shard: int) -> bool:
    """Return ``True`` when ``payload`` is ``shard``'s well-formed capture.

    The supervisor's corrupt-result classification: a worker answering
    with anything but a :class:`ShardResult` carrying its own shard index
    is treated exactly like an unpicklable result — killed and retried.
    """
    return isinstance(payload, ShardResult) and payload.shard == shard


def capture_shard(
    shard: int,
    instances: Iterable["Instance"],
    delivery_stats: "FederationStats",
    delivered: int,
    rejected: int,
    batch_rejects: int,
    batch_rewrites: int,
) -> ShardResult:
    """Capture the post-delivery state of one shard's owned instances."""
    result = ShardResult(
        shard=shard,
        delivered=delivered,
        rejected=rejected,
        batch_rejects=batch_rejects,
        batch_rewrites=batch_rewrites,
        stats=delivery_stats_tuple(delivery_stats),
    )
    for instance in instances:
        result.events[instance.domain] = capture_events(instance)
        result.remote_posts[instance.domain] = capture_remote_posts(instance)
        result.engagement[instance.domain] = capture_engagement(instance)
    return result


def federation_state(
    prepared: "PreparedFediverse", stats: "FederationStats"
) -> dict[str, Any]:
    """Snapshot everything federation can influence, for equivalence checks.

    The single-process snapshot: per-instance moderation-event streams,
    full remote-post state, peer sets, ground truth, generation counters
    and the aggregate delivery stats.  The sharded engine's
    :func:`merge_shard_results` produces a dict of exactly this shape.
    """
    registry = prepared.registry
    events = {}
    remote_posts = {}
    engagement = {}
    peers = {}
    for instance in registry.instances():
        events[instance.domain] = capture_events(instance)
        remote_posts[instance.domain] = capture_remote_posts(instance)
        engagement[instance.domain] = capture_engagement(instance)
        peers[instance.domain] = tuple(sorted(instance.peers))
    generation = prepared.stats
    return {
        "ground_truth": prepared.ground_truth.summary(),
        "generation_stats": (
            generation.users,
            generation.posts,
            generation.federated_deliveries,
            generation.rejected_deliveries,
        ),
        "delivery_stats": delivery_stats_tuple(stats),
        "events": events,
        "remote_posts": remote_posts,
        "engagement": engagement,
        "peers": peers,
    }


def delivered_pairs(batches: Iterable) -> dict[str, set[str]]:
    """Derive the peer pairs delivery records, straight from the batch stream.

    The engine's batch validation federates every (origin, target) pair
    exactly once per batch — before moderation, so rejected batches count
    too.  Reading the pairs off the stream therefore reproduces the peer
    side effect without any worker having to report it.
    """
    pairs: dict[str, set[str]] = {}
    for batch in batches:
        origin = batch.origin_domain
        target = batch.target_domain
        if origin == target:
            continue
        pairs.setdefault(origin, set()).add(target)
        pairs.setdefault(target, set()).add(origin)
    return pairs


def merge_shard_results(
    prepared: "PreparedFediverse",
    results: Sequence[ShardResult],
    pairs: dict[str, set[str]],
) -> dict[str, Any]:
    """Merge per-shard captures into one :func:`federation_state`-shaped dict.

    The merge is deterministic by construction: shards are folded in shard
    index order, per-shard capture maps are disjoint by the ownership
    argument (each domain is captured by exactly one shard), counters are
    summed, and peer sets are unioned then sorted.
    """
    ordered = sorted(results, key=lambda result: result.shard)
    events: dict[str, tuple] = {}
    remote_posts: dict[str, tuple] = {}
    engagement: dict[str, tuple] = {}
    delivered = accepted = rejected = modified = 0
    by_policy: dict[str, int] = {}
    stream_delivered = stream_rejected = 0
    for result in ordered:
        for domain, captured in result.events.items():
            if domain in events:
                raise RuntimeError(
                    f"domain {domain} captured by more than one shard"
                )
            events[domain] = captured
        remote_posts.update(result.remote_posts)
        engagement.update(result.engagement)
        shard_delivered, shard_accepted, shard_rejected, shard_modified, policies = (
            result.stats
        )
        delivered += shard_delivered
        accepted += shard_accepted
        rejected += shard_rejected
        modified += shard_modified
        for policy, count in policies:
            by_policy[policy] = by_policy.get(policy, 0) + count
        stream_delivered += result.delivered
        stream_rejected += result.rejected

    peers = {}
    for instance in prepared.registry.instances():
        extra = pairs.get(instance.domain)
        merged = instance.peers if extra is None else instance.peers | extra
        peers[instance.domain] = tuple(sorted(merged))

    generation = prepared.stats
    return {
        "ground_truth": prepared.ground_truth.summary(),
        "generation_stats": (
            generation.users,
            generation.posts,
            generation.federated_deliveries + stream_delivered,
            generation.rejected_deliveries + stream_rejected,
        ),
        "delivery_stats": (
            delivered,
            accepted,
            rejected,
            modified,
            tuple(sorted(by_policy.items())),
        ),
        "events": events,
        "remote_posts": remote_posts,
        "engagement": engagement,
        "peers": peers,
    }
