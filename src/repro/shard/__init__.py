"""Sharded multi-process federation (the road to millions of users).

Partitions the registry by domain hash into N shards, runs one worker per
shard over its slice of the federation batch stream, and merges the
workers' captured state deterministically — bit-identical to the
single-process engine for a fixed seed at every worker count.  See
:mod:`repro.shard.engine` for the architecture,
:mod:`repro.shard.state` for the ownership argument behind the merge and
:mod:`repro.shard.supervisor` for the fault-tolerant supervised mode
(deadlines, failure classification, deterministic shard re-execution).
"""

from repro.shard.engine import (
    ShardedRunResult,
    federate_sharded,
    fork_available,
    run_sharded,
)
from repro.shard.partition import partition_batches, partition_domains, shard_of
from repro.shard.state import (
    ShardResult,
    capture_shard,
    delivered_pairs,
    federation_state,
    merge_shard_results,
    valid_shard_result,
)
from repro.shard.supervisor import (
    RecoveryStats,
    ShardAttempt,
    ShardSupervisor,
    SupervisorConfig,
)

__all__ = [
    "RecoveryStats",
    "ShardAttempt",
    "ShardResult",
    "ShardSupervisor",
    "ShardedRunResult",
    "SupervisorConfig",
    "capture_shard",
    "delivered_pairs",
    "federate_sharded",
    "federation_state",
    "fork_available",
    "merge_shard_results",
    "partition_batches",
    "partition_domains",
    "run_sharded",
    "shard_of",
    "valid_shard_result",
]
