"""Deterministic domain-hash partitioning of the fediverse.

The sharded federation engine splits work by the *receiving* instance:
every delivery batch already targets exactly one domain (see
:class:`repro.synth.generator.FederationBatch`), and all the state a
delivery mutates on the receiving side — moderation events, remote posts,
timelines — lives on that one instance.  Assigning each domain to exactly
one shard therefore gives every worker a complete, in-order view of its
instances' delivery streams, which is what makes the merged result
bit-identical to the single-process engine.

The hash must be stable across processes and interpreter runs: Python's
built-in ``hash`` of a string is salted per process (``PYTHONHASHSEED``),
so the partitioner uses CRC-32 of the UTF-8 domain bytes instead.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def shard_of(domain: str, n_shards: int) -> int:
    """Return the shard index owning ``domain`` among ``n_shards`` shards."""
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if n_shards == 1:
        return 0
    return zlib.crc32(domain.encode("utf-8")) % n_shards


def partition_domains(
    domains: Iterable[str], n_shards: int
) -> list[list[str]]:
    """Partition ``domains`` into ``n_shards`` lists, preserving input order."""
    shards: list[list[str]] = [[] for _ in range(n_shards)]
    for domain in domains:
        shards[shard_of(domain, n_shards)].append(domain)
    return shards


def partition_batches(batches: Sequence[T], n_shards: int) -> list[list[T]]:
    """Partition delivery batches by the shard owning their target domain.

    Each shard's list is a subsequence of the input stream, so a worker
    consuming it in order delivers to each of its instances in exactly the
    order the single-process engine would have.
    """
    shards: list[list[T]] = [[] for _ in range(n_shards)]
    for batch in batches:
        shards[shard_of(batch.target_domain, n_shards)].append(batch)
    return shards
