"""The sharded multi-process federation engine.

The coordinator prepares the fediverse (a fully deterministic function of
the config seed), materialises the federation batch stream — paying the
stream's RNG draws and peer side effects exactly once, in the same order
as the single-process engine — and partitions the batches by the shard
owning each target domain.  One worker per shard then delivers its slice
through a private :class:`~repro.activitypub.delivery.FederationDelivery`
and captures its owned instances' post-delivery state; the coordinator
merges the captures deterministically (see :mod:`repro.shard.state`).

Two execution modes share the same partition/deliver/capture/merge path:

* ``fork`` — one forked worker process per shard.  Workers inherit the
  prepared registry copy-on-write; their batch slices are exchanged as
  serialised activity batches over :mod:`multiprocessing` pipes (so a
  batch originating on shard A's instance and targeting shard B's travels
  through shard B's pipe), and each worker sends one pickled
  :class:`~repro.shard.state.ShardResult` back.  The coordinator drains
  result pipes in shard order — workers never talk to each other, so no
  exchange can deadlock.
* ``inline`` — shards run sequentially in the coordinator process.  The
  fallback for platforms without ``fork``, the fast path for
  ``n_workers == 1``, and the automatic choice on single-CPU hosts
  (where forked workers would serialise anyway and only pay fork/IPC
  overhead); it exercises the identical partition, capture and merge
  machinery, which is what the determinism gate leans on.

Deliveries to different targets are independent (all mutated state lives
on the receiving instance; the shared decision caches are value-
transparent), so any interleaving of shard execution produces the same
merged state — the engine's central invariant, asserted bit-identically
against the single-process engine by the ``sharding`` bench stage and the
twin-run fuzz tests.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.activitypub.delivery import FederationDelivery
from repro.shard.partition import partition_batches
from repro.shard.state import (
    ShardResult,
    capture_shard,
    delivered_pairs,
    merge_shard_results,
)
from repro.synth.generator import (
    FederationBatch,
    FediverseGenerator,
    PreparedFediverse,
)


@dataclass
class ShardedRunResult:
    """The outcome of one sharded federation run."""

    n_workers: int
    #: ``"fork"`` or ``"inline"``.
    mode: str
    batches: int
    delivered: int
    rejected: int
    batch_rejects: int
    batch_rewrites: int
    #: Batches processed by each shard, in shard order.
    shard_batches: tuple[int, ...]
    #: Merged federation-state snapshot, shaped exactly like
    #: :func:`repro.shard.state.federation_state`.
    state: dict[str, Any]


def fork_available() -> bool:
    """Return ``True`` when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity/cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _deliver_batches(
    registry, batches: Sequence[FederationBatch]
) -> tuple[FederationDelivery, int, int]:
    """Deliver one shard's batch slice through a private delivery engine."""
    delivery = FederationDelivery(registry, sinks=[])
    delivered = rejected = 0
    for batch in batches:
        batch_delivered, batch_rejected = delivery.deliver_batch_counted(
            batch.activities, batch.target_domain
        )
        delivered += batch_delivered
        rejected += batch_rejected
    return delivery, delivered, rejected


def _shard_worker(shard: int, n_shards: int, registry, in_conn, out_conn) -> None:
    """Worker-process body: receive a batch slice, deliver, send the capture.

    The registry is inherited copy-on-write through ``fork``; the garbage
    collector is disabled so cycle collection never touches (and thereby
    copies) the parent's heap pages — the worker is short-lived and its
    whole heap dies with the process.
    """
    try:
        gc.disable()
        batches = in_conn.recv()
        in_conn.close()
        delivery, delivered, rejected = _deliver_batches(registry, batches)
        result = capture_shard(
            shard,
            registry.shard_instances(shard, n_shards),
            delivery.stats,
            delivered,
            rejected,
            delivery.batch_rejects,
            delivery.batch_rewrites,
        )
        out_conn.send(("ok", result))
    except BaseException:  # noqa: BLE001 - report any worker death to the coordinator
        out_conn.send(("error", traceback.format_exc()))
    finally:
        out_conn.close()


def _run_forked(
    registry, shards: list[list[FederationBatch]]
) -> list[ShardResult]:
    """Run one forked worker per shard and collect their captures in order."""
    ctx = multiprocessing.get_context("fork")
    n_shards = len(shards)
    workers = []
    # Freeze the heap into the permanent generation before forking: the
    # parent keeps collecting while workers run, and unfrozen objects
    # would be re-examined (and their pages copied) in every child.
    gc.freeze()
    try:
        for shard in range(n_shards):
            in_recv, in_send = ctx.Pipe(duplex=False)
            out_recv, out_send = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_shard_worker,
                args=(shard, n_shards, registry, in_recv, out_send),
                daemon=True,
            )
            process.start()
            # Close the child's ends in the coordinator so a dead worker
            # surfaces as EOF instead of a hang.
            in_recv.close()
            out_send.close()
            workers.append((process, in_send, out_recv))
    finally:
        gc.unfreeze()

    results: list[ShardResult] = []
    try:
        # Ship every shard its serialised batch slice first; each worker
        # starts by draining its input pipe, so the sends cannot deadlock
        # against the (later, in-order) result reads.
        for shard, (_, in_send, _) in enumerate(workers):
            in_send.send(shards[shard])
            in_send.close()
        for shard, (_, _, out_recv) in enumerate(workers):
            try:
                status, payload = out_recv.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard worker {shard} exited without sending a result"
                ) from None
            if status != "ok":
                raise RuntimeError(f"shard worker {shard} failed:\n{payload}")
            results.append(payload)
    finally:
        for process, _, out_recv in workers:
            out_recv.close()
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join()
    return results


def _run_inline(
    registry, shards: list[list[FederationBatch]]
) -> list[ShardResult]:
    """Run every shard sequentially in the coordinator process."""
    n_shards = len(shards)
    results = []
    for shard, batches in enumerate(shards):
        delivery, delivered, rejected = _deliver_batches(registry, batches)
        results.append(
            capture_shard(
                shard,
                registry.shard_instances(shard, n_shards),
                delivery.stats,
                delivered,
                rejected,
                delivery.batch_rejects,
                delivery.batch_rewrites,
            )
        )
    return results


def federate_sharded(
    prepared: PreparedFediverse,
    work: Iterable[FederationBatch],
    n_workers: int,
    *,
    processes: bool | None = None,
) -> ShardedRunResult:
    """Deliver a materialised batch stream through ``n_workers`` shards.

    ``processes=None`` (the default) forks workers when ``n_workers > 1``,
    the platform supports ``fork`` and more than one CPU is usable (a
    worker pool on a single-CPU host serialises anyway, so auto mode runs
    the same partitioned work inline rather than paying fork and pipe
    overhead for nothing); ``True``/``False`` force the respective mode.  Returns the merged
    federation-state snapshot — in fork mode the coordinator's registry is
    left untouched (workers mutate copy-on-write copies), so the snapshot,
    not the live registry, is the run's delivered state.
    """
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    work = list(work)
    shards = partition_batches(work, n_workers)
    pairs = delivered_pairs(work)

    if processes is None:
        processes = n_workers > 1 and fork_available() and usable_cpus() > 1
    if processes and not fork_available():
        raise RuntimeError(
            "process-based sharding requires the fork start method; "
            "pass processes=False for the inline engine"
        )

    if processes:
        results = _run_forked(prepared.registry, shards)
        mode = "fork"
    else:
        try:
            results = _run_inline(prepared.registry, shards)
        finally:
            # Mirror FediverseGenerator.federate: the shared decision
            # caches only pay off within one run, and dropping them keeps
            # delivered posts from outliving the run.  (Forked workers'
            # caches die with their processes.)
            from repro.mrf.shared import clear_shared_state

            clear_shared_state()
        mode = "inline"

    state = merge_shard_results(prepared, results, pairs)
    return ShardedRunResult(
        n_workers=n_workers,
        mode=mode,
        batches=len(work),
        delivered=sum(result.delivered for result in results),
        rejected=sum(result.rejected for result in results),
        batch_rejects=sum(result.batch_rejects for result in results),
        batch_rewrites=sum(result.batch_rewrites for result in results),
        shard_batches=tuple(len(batches) for batches in shards),
        state=state,
    )


def run_sharded(
    config,
    n_workers: int,
    *,
    processes: bool | None = None,
) -> tuple[PreparedFediverse, ShardedRunResult]:
    """Prepare a fediverse from ``config`` and federate it sharded.

    The end-to-end entry point (used by the ``xxlarge`` scenario): prepare
    is run once in the coordinator, the batch stream is materialised once,
    and the sharded engine does the delivery work.
    """
    generator = FediverseGenerator(config)
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    return prepared, federate_sharded(
        prepared, work, n_workers, processes=processes
    )
