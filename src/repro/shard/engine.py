"""The sharded multi-process federation engine.

The coordinator prepares the fediverse (a fully deterministic function of
the config seed), materialises the federation batch stream — paying the
stream's RNG draws and peer side effects exactly once, in the same order
as the single-process engine — and partitions the batches by the shard
owning each target domain.  One worker per shard then delivers its slice
through a private :class:`~repro.activitypub.delivery.FederationDelivery`
and captures its owned instances' post-delivery state; the coordinator
merges the captures deterministically (see :mod:`repro.shard.state`).

Two execution modes share the same partition/deliver/capture/merge path:

* ``fork`` — one forked worker process per shard.  Workers inherit the
  prepared registry copy-on-write; their batch slices are exchanged as
  serialised activity batches over :mod:`multiprocessing` pipes (so a
  batch originating on shard A's instance and targeting shard B's travels
  through shard B's pipe), and each worker sends one pickled
  :class:`~repro.shard.state.ShardResult` back.  The coordinator drains
  result pipes in shard order — workers never talk to each other, so no
  exchange can deadlock.
* ``inline`` — shards run sequentially in the coordinator process.  The
  fallback for platforms without ``fork``, the fast path for
  ``n_workers == 1``, and the automatic choice on single-CPU hosts
  (where forked workers would serialise anyway and only pay fork/IPC
  overhead); it exercises the identical partition, capture and merge
  machinery, which is what the determinism gate leans on.

On top of the plain fork mode sits the *supervised* mode
(:mod:`repro.shard.supervisor`): the same forked workers run under
per-shard inactivity deadlines with heartbeats, failures are classified
(clean error report / EOF crash / hang past deadline / corrupt result
pickle) and failed shards are re-executed — first in fresh forks with
escalating deadlines, finally inline — so the merged state stays
bit-identical to a fault-free run no matter which workers died.  Pass
``supervised=True`` (or a worker-fault plan / supervisor config) to
:func:`federate_sharded` to enable it.

Deliveries to different targets are independent (all mutated state lives
on the receiving instance; the shared decision caches are value-
transparent), so any interleaving of shard execution produces the same
merged state — the engine's central invariant, asserted bit-identically
against the single-process engine by the ``sharding`` bench stage and the
twin-run fuzz tests.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.activitypub.delivery import FederationDelivery
from repro.faults.workers import WorkerFaultKind, WorkerFaultPlan
from repro.shard.partition import partition_batches
from repro.shard.state import (
    ShardResult,
    capture_shard,
    delivered_pairs,
    merge_shard_results,
)
from repro.synth.generator import (
    FederationBatch,
    FediverseGenerator,
    PreparedFediverse,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.supervisor import RecoveryStats, SupervisorConfig

#: Exit code of a deterministically injected worker death (``os._exit``).
FAULT_EXIT_CODE = 86

#: The garbage bytes a corrupt-result fault writes instead of a pickled
#: :class:`ShardResult` — guaranteed not to unpickle.
CORRUPT_RESULT_PAYLOAD = b"corrupt shard result \xff\x00\xfe"


@dataclass
class ShardedRunResult:
    """The outcome of one sharded federation run."""

    n_workers: int
    #: ``"fork"`` or ``"inline"``.
    mode: str
    batches: int
    delivered: int
    rejected: int
    batch_rejects: int
    batch_rewrites: int
    #: Batches processed by each shard, in shard order.
    shard_batches: tuple[int, ...]
    #: Merged federation-state snapshot, shaped exactly like
    #: :func:`repro.shard.state.federation_state`.
    state: dict[str, Any]
    #: Per-shard attempt/failure/retry accounting of a supervised run
    #: (``None`` for the unsupervised engine).
    recovery: "RecoveryStats | None" = None


def fork_available() -> bool:
    """Return ``True`` when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity/cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _deliver_batches(
    registry,
    batches: Sequence[FederationBatch],
    progress: Callable[[int], None] | None = None,
) -> tuple[FederationDelivery, int, int]:
    """Deliver one shard's batch slice through a private delivery engine.

    ``progress`` (when given) is called after every batch with the number
    of batches completed — the supervised workers' heartbeat hook.
    """
    delivery = FederationDelivery(registry, sinks=[])
    delivered = rejected = 0
    for index, batch in enumerate(batches):
        batch_delivered, batch_rejected = delivery.deliver_batch_counted(
            batch.activities, batch.target_domain
        )
        delivered += batch_delivered
        rejected += batch_rejected
        if progress is not None:
            progress(index + 1)
    return delivery, delivered, rejected


def _execute_shard(
    registry, shard: int, n_shards: int, batches: Sequence[FederationBatch],
    progress: Callable[[int], None] | None = None,
) -> ShardResult:
    """Deliver one shard's slice and capture its owned instances' state.

    The single shard-execution body shared by the inline engine, the
    forked workers and the supervisor's inline fallback — each shard's
    slice is a pure deterministic function of the partition, so every
    caller produces the identical capture.
    """
    delivery, delivered, rejected = _deliver_batches(
        registry, batches, progress=progress
    )
    return capture_shard(
        shard,
        registry.shard_instances(shard, n_shards),
        delivery.stats,
        delivered,
        rejected,
        delivery.batch_rejects,
        delivery.batch_rewrites,
    )


def _shard_worker(
    shard: int,
    n_shards: int,
    registry,
    in_conn,
    out_conn,
    fault: str | None = None,
    heartbeat_seconds: float | None = None,
) -> None:
    """Worker-process body: receive a batch slice, deliver, send the capture.

    The registry is inherited copy-on-write through ``fork``; the garbage
    collector is disabled so cycle collection never touches (and thereby
    copies) the parent's heap pages — the worker is short-lived and its
    whole heap dies with the process.

    ``fault`` (a :class:`~repro.faults.workers.WorkerFaultKind` value)
    scripts this attempt's death for the supervisor's fault-injection
    plans; ``heartbeat_seconds`` enables periodic ``("hb", batches_done)``
    messages so the supervisor's deadline measures *inactivity*, not total
    runtime.  The unsupervised engine passes neither, keeping its original
    single-message protocol.
    """
    try:
        gc.disable()
        if fault == WorkerFaultKind.CRASH_EARLY.value:
            os._exit(FAULT_EXIT_CODE)
        if heartbeat_seconds is not None:
            # First sign of life before the (potentially large) slice
            # recv, so the supervisor's inactivity clock starts here.
            out_conn.send(("hb", 0))
        batches = in_conn.recv()
        in_conn.close()
        if fault == WorkerFaultKind.HANG.value:
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600.0)
        if fault == WorkerFaultKind.CORRUPT.value:
            out_conn.send_bytes(CORRUPT_RESULT_PAYLOAD)
            os._exit(FAULT_EXIT_CODE)
        if fault == WorkerFaultKind.ERROR.value:
            raise RuntimeError(f"injected worker fault: shard {shard} error")

        progress = None
        if heartbeat_seconds is not None:
            last_beat = time.monotonic()

            def progress(done: int) -> None:
                nonlocal last_beat
                now = time.monotonic()
                if now - last_beat >= heartbeat_seconds:
                    out_conn.send(("hb", done))
                    last_beat = now

        result = _execute_shard(
            registry, shard, n_shards, batches, progress=progress
        )
        if fault == WorkerFaultKind.CRASH_LATE.value:
            os._exit(FAULT_EXIT_CODE)
        out_conn.send(("ok", result))
    except BaseException:  # noqa: BLE001 - report any worker death to the coordinator
        try:
            out_conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    finally:
        try:
            out_conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def reap_process(
    process, grace_seconds: float = 30.0, escalation_seconds: float = 5.0
) -> None:
    """Tear a worker process down for certain, escalating as needed.

    ``join(grace)`` for the cooperative case, then ``terminate()``
    (SIGTERM) with a bounded join of ``escalation_seconds``, then
    ``kill()`` (SIGKILL) with a final bounded join — a worker that
    ignores SIGTERM can never leak past the run.  SIGKILL cannot be
    ignored, so the last join is certain to collect the process.
    """
    if grace_seconds > 0:
        process.join(timeout=grace_seconds)
    if process.is_alive():
        process.terminate()
        process.join(timeout=escalation_seconds)
    if process.is_alive():
        process.kill()
        process.join(timeout=escalation_seconds)


def _run_forked(
    registry, shards: list[list[FederationBatch]]
) -> list[ShardResult]:
    """Run one forked worker per shard and collect their captures in order."""
    ctx = multiprocessing.get_context("fork")
    n_shards = len(shards)
    workers = []
    # Freeze the heap into the permanent generation before forking: the
    # parent keeps collecting while workers run, and unfrozen objects
    # would be re-examined (and their pages copied) in every child.
    gc.freeze()
    try:
        for shard in range(n_shards):
            in_recv, in_send = ctx.Pipe(duplex=False)
            out_recv, out_send = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_shard_worker,
                args=(shard, n_shards, registry, in_recv, out_send),
                daemon=True,
            )
            process.start()
            # Close the child's ends in the coordinator so a dead worker
            # surfaces as EOF instead of a hang.
            in_recv.close()
            out_send.close()
            workers.append((process, in_send, out_recv))
    finally:
        gc.unfreeze()

    results: list[ShardResult] = []
    try:
        # Ship every shard its serialised batch slice first; each worker
        # starts by draining its input pipe, so the sends cannot deadlock
        # against the (later, in-order) result reads.  Every ship and
        # drain failure names its shard: a worker dead before its recv
        # surfaces as a broken send pipe here, not a raw BrokenPipeError.
        for shard, (_, in_send, _) in enumerate(workers):
            try:
                in_send.send(shards[shard])
            except OSError as exc:
                raise RuntimeError(
                    f"shard worker {shard} died before receiving its "
                    f"batch slice ({exc!r})"
                ) from exc
            finally:
                in_send.close()
        for shard, (_, _, out_recv) in enumerate(workers):
            try:
                status, payload = out_recv.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard worker {shard} exited without sending a result"
                ) from None
            except Exception as exc:
                raise RuntimeError(
                    f"shard worker {shard} sent an unreadable result ({exc!r})"
                ) from exc
            if status != "ok":
                raise RuntimeError(f"shard worker {shard} failed:\n{payload}")
            results.append(payload)
    finally:
        for process, _, out_recv in workers:
            out_recv.close()
            reap_process(process, grace_seconds=30.0)
    return results


def _run_inline(
    registry, shards: list[list[FederationBatch]]
) -> list[ShardResult]:
    """Run every shard sequentially in the coordinator process."""
    n_shards = len(shards)
    return [
        _execute_shard(registry, shard, n_shards, batches)
        for shard, batches in enumerate(shards)
    ]


def federate_sharded(
    prepared: PreparedFediverse,
    work: Iterable[FederationBatch],
    n_workers: int,
    *,
    processes: bool | None = None,
    supervised: bool | None = None,
    worker_faults: WorkerFaultPlan | None = None,
    supervisor: "SupervisorConfig | None" = None,
) -> ShardedRunResult:
    """Deliver a materialised batch stream through ``n_workers`` shards.

    ``processes=None`` (the default) forks workers when ``n_workers > 1``,
    the platform supports ``fork`` and more than one CPU is usable (a
    worker pool on a single-CPU host serialises anyway, so auto mode runs
    the same partitioned work inline rather than paying fork and pipe
    overhead for nothing); ``True``/``False`` force the respective mode.

    ``supervised`` selects the fault-tolerant engine: forked workers run
    under the :class:`~repro.shard.supervisor.ShardSupervisor` (inactivity
    deadlines, failure classification, deterministic shard re-execution)
    and the result carries its
    :class:`~repro.shard.supervisor.RecoveryStats`.  It defaults to on
    whenever a ``worker_faults`` plan or a ``supervisor`` config is given.
    A non-inert fault plan needs real processes to kill, so it is rejected
    when the run resolves to inline mode.

    Returns the merged federation-state snapshot — in fork mode the
    coordinator's registry is left untouched (workers mutate
    copy-on-write copies), so the snapshot, not the live registry, is the
    run's delivered state.  (The supervisor's last-resort inline fallback
    delivers a failed shard in the coordinator; that shard's capture and
    the merge are unaffected, because the fallback executes the identical
    pure slice.)
    """
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    work = list(work)
    shards = partition_batches(work, n_workers)
    pairs = delivered_pairs(work)

    if supervised is None:
        supervised = worker_faults is not None or supervisor is not None
    if processes is None:
        processes = n_workers > 1 and fork_available() and usable_cpus() > 1
    if processes and not fork_available():
        raise RuntimeError(
            "process-based sharding requires the fork start method; "
            "pass processes=False for the inline engine"
        )
    if (
        not processes
        and worker_faults is not None
        and not worker_faults.inert
    ):
        raise RuntimeError(
            "worker-fault injection needs forked workers to kill; "
            "pass processes=True (or drop the fault plan) for inline runs"
        )

    recovery: "RecoveryStats | None" = None
    try:
        if processes:
            if supervised:
                from repro.shard.supervisor import ShardSupervisor

                results, recovery = ShardSupervisor(
                    config=supervisor, faults=worker_faults
                ).run(prepared.registry, shards)
            else:
                results = _run_forked(prepared.registry, shards)
            mode = "fork"
        else:
            results = _run_inline(prepared.registry, shards)
            if supervised:
                from repro.shard.supervisor import RecoveryStats

                recovery = RecoveryStats(n_shards=len(shards))
                for shard in range(len(shards)):
                    recovery.record(shard, 0, "inline", "ok", 0.0)
            mode = "inline"
    finally:
        # The shared decision caches only pay off within one run, and
        # dropping them keeps delivered posts from outliving it.  Fork
        # mode needs this too: the workers' caches die with their
        # processes, but prepare()/materialisation (and the supervisor's
        # inline fallback) populate the *coordinator's* caches.
        from repro.mrf.shared import clear_shared_state

        clear_shared_state()

    state = merge_shard_results(prepared, results, pairs)
    return ShardedRunResult(
        n_workers=n_workers,
        mode=mode,
        batches=len(work),
        delivered=sum(result.delivered for result in results),
        rejected=sum(result.rejected for result in results),
        batch_rejects=sum(result.batch_rejects for result in results),
        batch_rewrites=sum(result.batch_rewrites for result in results),
        shard_batches=tuple(len(batches) for batches in shards),
        state=state,
        recovery=recovery,
    )


def run_sharded(
    config,
    n_workers: int,
    *,
    processes: bool | None = None,
    supervised: bool | None = None,
    worker_faults: WorkerFaultPlan | None = None,
    supervisor: "SupervisorConfig | None" = None,
) -> tuple[PreparedFediverse, ShardedRunResult]:
    """Prepare a fediverse from ``config`` and federate it sharded.

    The end-to-end entry point (used by the ``xxlarge`` scenario): prepare
    is run once in the coordinator, the batch stream is materialised once,
    and the sharded engine does the delivery work.  Supervision arguments
    pass straight through to :func:`federate_sharded`.
    """
    generator = FediverseGenerator(config)
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    return prepared, federate_sharded(
        prepared,
        work,
        n_workers,
        processes=processes,
        supervised=supervised,
        worker_faults=worker_faults,
        supervisor=supervisor,
    )
