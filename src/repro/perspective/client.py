"""An API-shaped client around the lexicon scorer.

The analysis code talks to the scorer the way the paper's pipeline talked to
the Perspective API: one ``analyze`` call per text (or batched), subject to a
request quota, with caching of repeated texts.  Modelling the quota matters
for the crawler-cost benchmark; caching matters because the same post may be
observed from several instances (it federates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perspective.attributes import ATTRIBUTES, Attribute, AttributeScores
from repro.perspective.scorer import LexiconScorer


class RateLimitExceeded(RuntimeError):
    """Raised when the per-window request quota is exhausted."""

    def __init__(self, quota: int) -> None:
        super().__init__(f"perspective quota of {quota} requests per window exceeded")
        self.quota = quota


@dataclass(frozen=True)
class AnalysisResult:
    """The result of analysing one text."""

    text: str
    scores: AttributeScores
    cached: bool = False


@dataclass
class ClientStats:
    """Usage counters kept by the client."""

    requests: int = 0
    analyzed_texts: int = 0
    cache_hits: int = 0
    rate_limited: int = 0
    per_attribute_requests: dict[str, int] = field(default_factory=dict)


class PerspectiveClient:
    """Deterministic, offline stand-in for the Google Perspective API client.

    Parameters
    ----------
    scorer:
        The scorer used to produce attribute scores.
    quota_per_window:
        Maximum number of (non-cached) requests per window; ``None`` means
        unlimited.  The real API enforces a per-minute quota, which the
        paper's five-month campaign had to respect.
    max_cache_size:
        Optional bound on the text-keyed score cache.  ``None`` (the
        default) keeps every score, which is what the analysis pipeline
        wants; a bound turns the cache into an LRU for long-running
        services that cannot hold every text in memory.
    """

    def __init__(
        self,
        scorer: LexiconScorer | None = None,
        quota_per_window: int | None = None,
        max_cache_size: int | None = None,
        corpus=None,
    ) -> None:
        if quota_per_window is not None and quota_per_window <= 0:
            raise ValueError("quota_per_window must be positive (or None)")
        if max_cache_size is not None and max_cache_size <= 0:
            raise ValueError("max_cache_size must be positive (or None)")
        self.scorer = scorer or LexiconScorer()
        self.quota_per_window = quota_per_window
        self.max_cache_size = max_cache_size
        self.corpus = corpus
        self.stats = ClientStats()
        self._cache: dict[str, AttributeScores] = {}
        self._window_requests = 0

    def attach_corpus(self, corpus) -> None:
        """Serve scores from materialised corpus columns.

        ``corpus`` is a :class:`~repro.perspective.corpus.CorpusColumns`
        built over the same scorer.  Only the scoring work changes —
        request counting, quota charging and the text cache behave exactly
        as without a corpus, and the derived scores are bitwise identical
        to :meth:`LexiconScorer.score`, so attaching one is observable
        only as throughput.

        Clients with a bounded cache (``max_cache_size``) ignore the
        corpus: it interns every analysed text for the campaign's
        lifetime, which would silently defeat the memory bound the LRU
        promises.
        """
        self.corpus = corpus

    def _corpus_scores(self) -> "object | None":
        """Return the corpus to score through, or ``None`` to use the scorer."""
        if self.max_cache_size is not None:
            return None
        return self.corpus

    # ------------------------------------------------------------------ #
    # Quota window management
    # ------------------------------------------------------------------ #
    def reset_window(self) -> None:
        """Start a new quota window (e.g. a new minute)."""
        self._window_requests = 0

    @property
    def window_requests(self) -> int:
        """Return how many non-cached requests were made this window."""
        return self._window_requests

    def _charge_quota(self) -> None:
        if self.quota_per_window is None:
            return
        if self._window_requests >= self.quota_per_window:
            self.stats.rate_limited += 1
            raise RateLimitExceeded(self.quota_per_window)
        self._window_requests += 1

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #
    def _cache_get(self, text: str) -> AttributeScores | None:
        if self.max_cache_size is None:
            return self._cache.get(text)
        scores = self._cache.pop(text, None)
        if scores is not None:
            self._cache[text] = scores  # re-insert: most recently used last
        return scores

    def _cache_put(self, text: str, scores: AttributeScores) -> None:
        if self.max_cache_size is not None and len(self._cache) >= self.max_cache_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[text] = scores

    def _count_request(self, attributes: tuple[Attribute, ...]) -> None:
        self.stats.requests += 1
        self.stats.analyzed_texts += 1
        for attribute in attributes:
            self.stats.per_attribute_requests[attribute.value] = (
                self.stats.per_attribute_requests.get(attribute.value, 0) + 1
            )

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def analyze(
        self,
        text: str,
        attributes: tuple[Attribute, ...] = ATTRIBUTES,
    ) -> AnalysisResult:
        """Analyse one text, using the cache when possible."""
        cached = self._cache_get(text)
        if cached is not None:
            self.stats.cache_hits += 1
            return AnalysisResult(text=text, scores=cached, cached=True)

        self._charge_quota()
        self._count_request(attributes)
        corpus = self._corpus_scores()
        if corpus is not None:
            scores = corpus.scores_for_text(text)
        else:
            scores = self.scorer.score(text)
        self._cache_put(text, scores)
        return AnalysisResult(text=text, scores=scores)

    def analyze_many(
        self,
        texts: list[str],
        attributes: tuple[Attribute, ...] = ATTRIBUTES,
    ) -> list[AnalysisResult]:
        """Analyse several texts in submission order.

        A genuine batch path: distinct uncached texts are collected first
        and scored with one :meth:`LexiconScorer.score_many` call, while
        cache semantics, usage counters and quota charging stay identical
        to calling :meth:`analyze` per text (duplicates within the batch
        count as cache hits, and quota is charged per distinct new text in
        submission order).
        """
        if self.max_cache_size is not None:
            # A bounded LRU makes batch ordering observable (an entry can be
            # evicted between this method's lookup and scoring phases), so
            # take the sequential path literally to keep the guarantee.
            return [self.analyze(text, attributes) for text in texts]
        results: list[AnalysisResult | None] = [None] * len(texts)
        order: list[str] = []
        slots: dict[str, list[int]] = {}
        try:
            for index, text in enumerate(texts):
                known = slots.get(text)
                if known is not None:
                    # Duplicate of a text charged earlier in this batch: the
                    # sequential path would have served it from the cache.
                    self.stats.cache_hits += 1
                    known.append(index)
                    continue
                cached = self._cache_get(text)
                if cached is not None:
                    self.stats.cache_hits += 1
                    results[index] = AnalysisResult(text=text, scores=cached, cached=True)
                    continue
                self._charge_quota()
                self._count_request(attributes)
                order.append(text)
                slots[text] = [index]
        finally:
            # Score whatever was charged — also when the quota ran out
            # mid-batch, so the cache ends up exactly as the sequential
            # path would have left it.
            corpus = self._corpus_scores()
            if corpus is not None:
                scored = corpus.scores_for(order)
            else:
                scored = self.scorer.score_many(order)
            for text, scores in zip(order, scored):
                self._cache_put(text, scores)
                indices = slots[text]
                results[indices[0]] = AnalysisResult(text=text, scores=scores)
                for duplicate in indices[1:]:
                    results[duplicate] = AnalysisResult(
                        text=text, scores=scores, cached=True
                    )
        return results

    def clear_cache(self) -> None:
        """Drop all cached scores."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Return the number of cached texts."""
        return len(self._cache)
