"""The compiled term-matching engine behind the Perspective substitute.

Scoring used to pay a full Python tokenise of every text (one ``findall``
materialising every token string) plus one merged-table dict probe per
token, even though the merged lexicon is ~60 terms and the overwhelming
majority of tokens hit nothing.  The engine compiles the merged lexicon
into a single C-level scan instead:

* one compiled regex — a trie-structured alternation over the lexicon
  terms wrapped in tokenizer-consistent boundaries
  (``(?<![a-z0-9'])…(?![a-z0-9'])`` against the lowercased text) — finds
  every lexicon token in one pass, in token order; and
* a counting-only token pass supplies the density denominator, and only
  runs when the first scan actually hit something (a zero-hit text scores
  0.0 on every attribute regardless of its token count).

Because the tokeniser alphabet is ``[a-z0-9']``, a maximal run of those
characters *is* a token, so the boundary lookarounds make the alternation
match exactly the tokens the seed's ``tokenize`` would have produced.
Matches arrive in token order and skipped non-lexicon tokens contribute
the float identity ``+0.0``, so per-attribute partial sums stay bitwise
identical to the seed summation.

For corpus-sized batches the engine additionally offers a **batched blob
scan** (:meth:`CompiledLexiconMatcher.scan`): texts are joined into one
separator-delimited blob and matched in a single pass.  When NumPy is
importable the blob is tokenised vectorised on its UTF-8 bytes (the token
alphabet is pure ASCII, so byte-level runs equal str-level tokens) and
terms are matched by length-grouped byte comparison; otherwise the same
trie regex scans the blob.  Either way the per-text accumulation loop
walks matches in position order, preserving the bit-exact contract.
"""

from __future__ import annotations

import re
from bisect import bisect_right

try:  # pragma: no cover - exercised indirectly by the equivalence tests
    import numpy as _np
except Exception:  # pragma: no cover - numpy is baked into the image
    _np = None

#: The tokeniser used across the Perspective substitute (kept in sync with
#: :data:`repro.perspective.lexicon._WORD_RE`).
_WORD_RE = re.compile(r"[a-z0-9']+")

#: The tokeniser alphabet: a lexicon term that is not one maximal run of
#: these characters can never equal a token, so it is dropped from the
#: compiled pattern (the merged dict still holds it, matching the seed's
#: ``table.get(token)`` semantics, which could never return it either).
_TOKEN_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789'")

_LOOKBEHIND = r"(?<![a-z0-9'])"
_LOOKAHEAD = r"(?![a-z0-9'])"


def _trie_pattern(terms: list[str]) -> str:
    """Return a trie-structured alternation matching exactly ``terms``.

    A flat ``a|ab|b`` alternation retries every branch at every candidate
    position; factoring shared prefixes into a character trie lets the
    regex engine discard whole term families after one character, which
    measures ~1.5x faster on miss-heavy text with the default lexicon.
    """
    trie: dict = {}
    for term in terms:
        node = trie
        for char in term:
            node = node.setdefault(char, {})
        node[""] = True

    def emit(node: dict) -> str:
        if len(node) == 1 and "" in node:
            return ""
        alternatives = []
        optional = False
        for char, child in sorted(node.items()):
            if char == "":
                optional = True
                continue
            alternatives.append(re.escape(char) + emit(child))
        if len(alternatives) == 1 and not optional:
            return alternatives[0]
        body = "(?:" + "|".join(alternatives) + ")"
        return body + ("?" if optional else "")

    return emit(trie)


class CompiledLexiconMatcher:
    """One lexicon configuration compiled into C-level scans.

    Instances are immutable snapshots of a merged lexicon table; the
    owning :class:`~repro.perspective.lexicon.Lexicon` rebuilds them on
    demand and drops them whenever ``add_term``/``remove_term`` mutates
    the configuration (mirroring ``merged_table`` invalidation).
    """

    __slots__ = ("weights", "pattern", "width", "_by_key", "_term_keys")

    def __init__(self, merged: dict[str, tuple[float, ...]], width: int) -> None:
        #: token -> per-attribute weight vector (the merged lexicon table).
        self.weights = merged
        #: Number of scored attributes (the length of every weight vector).
        self.width = width
        matchable = [
            term for term in merged if term and not set(term) - _TOKEN_CHARS
        ]
        if matchable:
            self.pattern = re.compile(
                _LOOKBEHIND + _trie_pattern(matchable) + _LOOKAHEAD
            )
        else:
            # Nothing the tokeniser could ever produce: every scan misses.
            self.pattern = None
        #: Packed (first byte, last byte, clamped length) key -> the terms
        #: sharing it, as (utf-8 bytes, byte length).  The NumPy scan uses
        #: the keys as a cheap vectorised prefilter so the exact byte
        #: comparison only runs on the handful of colliding tokens.
        by_key: dict[int, list[tuple[str, bytes, int]]] = {}
        for term in matchable:
            encoded = term.encode()
            key = _pack_key(encoded[0], encoded[-1], len(encoded))
            by_key.setdefault(key, []).append((term, encoded, len(encoded)))
        self._by_key = by_key
        self._term_keys = sorted(by_key)

    # ------------------------------------------------------------------ #
    # Per-text scans
    # ------------------------------------------------------------------ #
    def hits(self, lowered: str) -> tuple[float, ...] | None:
        """Return the per-attribute summed hit weights of ``lowered``.

        ``None`` means no lexicon term occurred at all (the overwhelmingly
        common case), letting callers skip the token-counting pass.  Sums
        accumulate in token order, exactly like the per-token baseline.
        """
        pattern = self.pattern
        if pattern is None:
            return None
        iterator = pattern.finditer(lowered)
        first = next(iterator, None)
        if first is None:
            return None
        weights = self.weights
        totals = list(weights[first.group()])
        for match in iterator:
            for position, weight in enumerate(weights[match.group()]):
                totals[position] += weight
        return tuple(totals)

    @staticmethod
    def count_tokens(lowered: str) -> int:
        """The counting-only token pass: ``len(tokenize(text))`` without
        keeping the token strings around afterwards."""
        return len(_WORD_RE.findall(lowered))

    def scan_text(self, text: str) -> tuple[int, tuple[float, ...] | None]:
        """Return the ``(token_count, hit_vector)`` column of one text.

        The count is only materialised when the text actually hit the
        lexicon — a zero-hit column is ``(0, None)`` and scores 0.0 on
        every attribute no matter how many tokens the text holds.
        """
        lowered = text.lower()
        found = self.hits(lowered)
        if found is None:
            return (0, None)
        return (self.count_tokens(lowered), found)

    # ------------------------------------------------------------------ #
    # Batched blob scan
    # ------------------------------------------------------------------ #
    def scan(self, texts: list[str]) -> list[tuple[int, tuple[float, ...] | None]]:
        """Return one ``(token_count, hit_vector)`` column per text.

        Columns carry everything a score derivation needs: zero-hit texts
        get ``(0, None)``; hit texts get their exact token count and the
        token-order-accumulated weight vector.  The batched paths and the
        per-text path produce identical columns.
        """
        if not texts:
            return []
        if len(texts) < 32:
            return [self.scan_text(text) for text in texts]
        if _np is not None:
            return self._scan_numpy(texts)
        return self._scan_blob(texts)

    def _scan_blob(self, texts: list[str]) -> list[tuple[int, tuple[float, ...] | None]]:
        """Regex fallback of :meth:`scan`: one trie-pattern pass over a
        separator-joined blob instead of one scan call per text."""
        lowered = [text.lower() for text in texts]
        columns: list[tuple[int, tuple[float, ...] | None]] = [(0, None)] * len(texts)
        pattern = self.pattern
        if pattern is None:
            return columns
        # "\n" is outside the token alphabet, so terms cannot span texts
        # and every boundary lookaround behaves as it would per-text.
        blob = "\n".join(lowered)
        offsets = []
        position = 0
        for text in lowered:
            offsets.append(position)
            position += len(text) + 1
        weights = self.weights
        totals: dict[int, list[float]] = {}
        for match in pattern.finditer(blob):
            row = bisect_right(offsets, match.start()) - 1
            vector = weights[match.group()]
            running = totals.get(row)
            if running is None:
                totals[row] = list(vector)
            else:
                for index, weight in enumerate(vector):
                    running[index] += weight
        for row, running in totals.items():
            columns[row] = (self.count_tokens(lowered[row]), tuple(running))
        return columns

    def _scan_numpy(self, texts: list[str]) -> list[tuple[int, tuple[float, ...] | None]]:
        """Vectorised :meth:`scan`: tokenise the whole corpus on its UTF-8
        bytes and match terms by length-grouped byte comparison.

        The token alphabet is pure ASCII and UTF-8 continuation bytes are
        all >= 0x80, so byte-level token runs are exactly the str-level
        tokens; '\\n' separators keep texts apart.  Only the final
        accumulation (sparse: one iteration per lexicon hit) runs in
        Python, in match-position order — i.e. token order per text.
        """
        np = _np
        joined = "\n".join(texts)
        if joined.isascii():
            # ASCII corpus (the common case): lowercasing is 1:1, so one
            # C-level lower+encode of the whole blob replaces the per-text
            # loop and char offsets equal byte offsets.
            blob = joined.lower().encode()
            sizes = np.fromiter(map(len, texts), np.int64, len(texts))
        else:
            encoded = [text.lower().encode() for text in texts]
            blob = b"\n".join(encoded)
            sizes = np.fromiter(map(len, encoded), np.int64, len(encoded))
        data = np.frombuffer(blob, dtype=np.uint8)
        # Text i occupies bytes [bounds[i], bounds[i] + sizes[i]).
        bounds = np.zeros(len(texts) + 1, dtype=np.int64)
        np.cumsum(sizes + 1, out=bounds[1:])

        is_token = _token_byte_table(np)[data]
        after, before = is_token[1:], is_token[:-1]
        token_starts = np.flatnonzero(after & ~before) + 1
        if is_token[0]:
            token_starts = np.concatenate(([0], token_starts))
        counts = np.diff(np.searchsorted(token_starts, bounds))
        columns: list[tuple[int, tuple[float, ...] | None]] = [
            (0, None) for _ in texts
        ]
        if not token_starts.size or self.pattern is None:
            return columns
        token_ends = np.flatnonzero(before & ~after) + 1
        if is_token[-1]:
            token_ends = np.concatenate((token_ends, [len(data)]))
        token_lengths = token_ends - token_starts

        # Prefilter: almost no token is a lexicon term, so compare packed
        # (first byte, last byte, clamped length) keys first and only byte-
        # compare the few tokens whose key collides with a term's.
        token_keys = (
            (data[token_starts].astype(np.int32) << 16)
            | (data[token_ends - 1].astype(np.int32) << 8)
            | np.minimum(token_lengths, 255).astype(np.int32)
        )
        term_keys = np.asarray(self._term_keys, dtype=np.int32)
        try:
            key_hits = np.isin(token_keys, term_keys, kind="table")
        except TypeError:  # pragma: no cover - numpy without kind=
            key_hits = np.isin(token_keys, term_keys)
        candidate_rows = np.flatnonzero(key_hits)
        if not candidate_rows.size:
            return columns
        candidate_starts = token_starts[candidate_rows]
        candidate_keys = token_keys[candidate_rows]
        candidate_lengths = token_lengths[candidate_rows]

        matched_positions: list = []
        matched_vectors: list[tuple[float, ...]] = []
        weights = self.weights
        for key, terms in self._by_key.items():
            in_key = np.flatnonzero(candidate_keys == key)
            if not in_key.size:
                continue
            for term, term_bytes, length in terms:
                selected = in_key[candidate_lengths[in_key] == length]
                if not selected.size:
                    continue
                starts = candidate_starts[selected]
                window = data[starts[:, None] + np.arange(length)]
                hit = (window == np.frombuffer(term_bytes, dtype=np.uint8)).all(axis=1)
                if not hit.any():
                    continue
                positions = starts[hit]
                matched_positions.append(positions)
                matched_vectors.extend([weights[term]] * len(positions))
        if not matched_positions:
            return columns

        # Accumulate in match-position order — i.e. token order per text —
        # on native ints (iterating NumPy scalars costs ~10x per element).
        all_positions = np.concatenate(matched_positions)
        order = np.argsort(all_positions, kind="stable").tolist()
        rows = (np.searchsorted(bounds, all_positions, side="right") - 1).tolist()
        totals: dict[int, list[float]] = {}
        for index in order:
            row = rows[index]
            vector = matched_vectors[index]
            running = totals.get(row)
            if running is None:
                totals[row] = list(vector)
            else:
                for position, weight in enumerate(vector):
                    running[position] += weight
        for row, running in totals.items():
            columns[row] = (int(counts[row]), tuple(running))
        return columns


def _pack_key(first: int, last: int, length: int) -> int:
    """Pack (first byte, last byte, length clamped to 255) into one int."""
    return (first << 16) | (last << 8) | min(length, 255)


_TOKEN_BYTE_TABLE = None


def _token_byte_table(np):
    """Return (building once) the 256-entry is-token-byte lookup table."""
    global _TOKEN_BYTE_TABLE
    if _TOKEN_BYTE_TABLE is None:
        table = np.zeros(256, dtype=bool)
        for char in _TOKEN_CHARS:
            table[ord(char)] = True
        _TOKEN_BYTE_TABLE = table
    return _TOKEN_BYTE_TABLE
