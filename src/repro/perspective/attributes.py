"""The attributes scored by the Perspective substitute."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: The harmfulness threshold recommended by the Perspective developers and
#: used throughout the paper (Section 3).
HARMFUL_THRESHOLD = 0.8


class Attribute(str, Enum):
    """The three Perspective attributes the paper scores posts on."""

    TOXICITY = "toxicity"
    PROFANITY = "profanity"
    SEXUALLY_EXPLICIT = "sexually_explicit"


#: All attributes, in the order the paper reports them.
ATTRIBUTES: tuple[Attribute, ...] = (
    Attribute.TOXICITY,
    Attribute.PROFANITY,
    Attribute.SEXUALLY_EXPLICIT,
)


@dataclass(frozen=True)
class AttributeScores:
    """Per-attribute scores for one piece of text (probabilities in [0, 1])."""

    toxicity: float = 0.0
    profanity: float = 0.0
    sexually_explicit: float = 0.0

    def __post_init__(self) -> None:
        for attribute in ATTRIBUTES:
            value = self.get(attribute)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attribute.value} score out of range: {value}")

    def get(self, attribute: Attribute | str) -> float:
        """Return the score of one attribute."""
        if isinstance(attribute, Attribute):
            attribute = attribute.value
        return float(getattr(self, attribute))

    def as_dict(self) -> dict[str, float]:
        """Return the scores as a plain dictionary."""
        return {attribute.value: self.get(attribute) for attribute in ATTRIBUTES}

    @property
    def max_score(self) -> float:
        """Return the highest score across all attributes."""
        return max(self.get(attribute) for attribute in ATTRIBUTES)

    def is_harmful(self, threshold: float = HARMFUL_THRESHOLD) -> bool:
        """Return ``True`` when any attribute reaches ``threshold``.

        This is the paper's post-level harmfulness definition (Section 3).
        """
        return self.max_score >= threshold

    def harmful_attributes(self, threshold: float = HARMFUL_THRESHOLD) -> tuple[Attribute, ...]:
        """Return the attributes whose score reaches ``threshold``."""
        return tuple(
            attribute for attribute in ATTRIBUTES if self.get(attribute) >= threshold
        )

    @classmethod
    def mean(cls, scores: list["AttributeScores"]) -> "AttributeScores":
        """Return the element-wise mean of several score sets.

        The paper classifies a *user* as harmful when the average of all
        their posts' scores reaches the threshold in any attribute; this is
        the averaging step of that definition.
        """
        if not scores:
            return cls()
        count = len(scores)
        return cls(
            toxicity=sum(s.toxicity for s in scores) / count,
            profanity=sum(s.profanity for s in scores) / count,
            sexually_explicit=sum(s.sexually_explicit for s in scores) / count,
        )
