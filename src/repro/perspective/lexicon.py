"""Attribute lexicons used by the deterministic scorer.

The real Perspective API is a neural classifier; an offline reproduction
needs something deterministic and inspectable instead.  We use weighted
keyword lexicons per attribute: each term contributes its weight when it
appears in a text, and the scorer converts the resulting density of harmful
terms into a [0, 1] probability.  The terms are deliberately mild synthetic
stand-ins — what matters for the reproduction is not the vocabulary itself
but that the synthetic text generator and the scorer agree on it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.perspective.attributes import ATTRIBUTES, Attribute
from repro.perspective.matcher import CompiledLexiconMatcher

_WORD_RE = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase word tokens."""
    return _WORD_RE.findall(text.lower())


#: Default per-attribute term weights.  Weights above 1.0 mark terms that
#: are strong signals on their own; weights below 1.0 mark weak signals.
_DEFAULT_TERMS: dict[Attribute, dict[str, float]] = {
    Attribute.TOXICITY: {
        "idiot": 1.0,
        "idiots": 1.0,
        "moron": 1.0,
        "morons": 1.0,
        "loser": 0.9,
        "losers": 0.9,
        "stupid": 0.8,
        "dumb": 0.7,
        "trash": 0.8,
        "garbage": 0.7,
        "pathetic": 0.8,
        "scum": 1.1,
        "vermin": 1.2,
        "subhuman": 1.4,
        "degenerate": 1.1,
        "clown": 0.6,
        "worthless": 1.0,
        "disgusting": 0.8,
        "hate": 0.9,
        "despise": 0.8,
        "destroy": 0.5,
        "shut": 0.3,
        "kill": 1.0,
        "die": 0.8,
        "threat": 0.7,
        "attack": 0.6,
    },
    Attribute.PROFANITY: {
        "damn": 0.7,
        "dammit": 0.8,
        "hell": 0.6,
        "crap": 0.7,
        "crappy": 0.7,
        "bloody": 0.5,
        "freaking": 0.5,
        "frigging": 0.6,
        "bollocks": 0.8,
        "bugger": 0.7,
        "arse": 0.8,
        "bastard": 1.0,
        "piss": 0.9,
        "pissed": 0.9,
        "swearword": 1.0,
        "cursed": 0.5,
        "expletive": 1.0,
    },
    Attribute.SEXUALLY_EXPLICIT: {
        "nsfw": 0.8,
        "lewd": 0.9,
        "explicit": 0.8,
        "xxx": 1.1,
        "porn": 1.2,
        "pornographic": 1.2,
        "nude": 1.0,
        "nudes": 1.0,
        "naked": 0.8,
        "erotic": 1.0,
        "erotica": 1.0,
        "fetish": 1.0,
        "kink": 0.8,
        "hentai": 1.1,
        "smut": 1.0,
        "adult": 0.5,
        "onlyfans": 0.9,
    },
}


@dataclass
class Lexicon:
    """Weighted keyword lists for each scored attribute."""

    terms: dict[Attribute, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for attribute in ATTRIBUTES:
            self.terms.setdefault(attribute, {})
        self._merged: dict[str, tuple[float, ...]] | None = None
        self._matcher: CompiledLexiconMatcher | None = None
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic configuration version, bumped by every term mutation.

        Derived structures built from a lexicon snapshot (the compiled
        matcher, corpus score columns) stamp themselves with this value so
        staleness is one integer comparison.
        """
        return self._version

    def _invalidate(self) -> None:
        self._merged = None
        self._matcher = None
        self._version += 1

    def add_term(self, attribute: Attribute, term: str, weight: float = 1.0) -> None:
        """Add (or overwrite) a weighted term for ``attribute``."""
        if weight <= 0:
            raise ValueError("term weight must be positive")
        self.terms[attribute][term.lower()] = float(weight)
        self._invalidate()

    def remove_term(self, attribute: Attribute, term: str) -> bool:
        """Remove a term; return ``True`` when it was present."""
        removed = self.terms[attribute].pop(term.lower(), None) is not None
        if removed:
            self._invalidate()
        return removed

    def weight(self, attribute: Attribute, token: str) -> float:
        """Return the weight of ``token`` for ``attribute`` (0 when absent)."""
        return self.terms[attribute].get(token, 0.0)

    def attribute_terms(self, attribute: Attribute) -> dict[str, float]:
        """Return a copy of the term weights for ``attribute``."""
        return dict(self.terms[attribute])

    def vocabulary(self, attribute: Attribute) -> tuple[str, ...]:
        """Return the terms for ``attribute`` sorted by descending weight."""
        return tuple(
            sorted(self.terms[attribute], key=lambda t: (-self.terms[attribute][t], t))
        )

    def weighted_hits(self, attribute: Attribute, tokens: list[str]) -> float:
        """Return the summed weight of lexicon terms appearing in ``tokens``."""
        table = self.terms[attribute]
        return sum(table.get(token, 0.0) for token in tokens)

    def merged_table(self) -> dict[str, tuple[float, ...]]:
        """Return the token -> per-attribute weight-vector lookup table.

        The table is the union of every attribute lexicon; vectors are
        aligned with :data:`~repro.perspective.attributes.ATTRIBUTES`.  It is
        built lazily and invalidated by :meth:`add_term`/:meth:`remove_term`,
        so the scorer can resolve all attributes with one dict lookup per
        token instead of one lookup per (token, attribute) pair.
        """
        if self._merged is None:
            merged: dict[str, list[float]] = {}
            for position, attribute in enumerate(ATTRIBUTES):
                for term, weight in self.terms[attribute].items():
                    vector = merged.get(term)
                    if vector is None:
                        vector = [0.0] * len(ATTRIBUTES)
                        merged[term] = vector
                    vector[position] = weight
            self._merged = {term: tuple(vector) for term, vector in merged.items()}
        return self._merged

    def weighted_hits_all(self, tokens: list[str]) -> tuple[float, ...]:
        """Return every attribute's summed hit weight in one pass.

        Accumulation follows token order per attribute, exactly like calling
        :meth:`weighted_hits` once per attribute — adding ``0.0`` is the
        floating-point identity, so skipping non-lexicon tokens leaves each
        attribute's partial-sum sequence (and therefore the result bits)
        unchanged.  Keeping the seed's summation order matters: scores are
        compared against thresholds with ``>=`` and the synthetic corpus
        plants densities that land exactly on them.
        """
        merged = self.merged_table()
        totals = [0.0] * len(ATTRIBUTES)
        for token in tokens:
            weights = merged.get(token)
            if weights is not None:
                for position, weight in enumerate(weights):
                    totals[position] += weight
        return tuple(totals)

    def compiled(self) -> CompiledLexiconMatcher:
        """Return the compiled matching engine for the current lexicon.

        Built lazily from :meth:`merged_table` and dropped by
        :meth:`add_term`/:meth:`remove_term`, exactly like the merged table
        itself — so the matcher can never observe a stale term set.
        """
        if self._matcher is None:
            self._matcher = CompiledLexiconMatcher(
                self.merged_table(), len(ATTRIBUTES)
            )
        return self._matcher

    def size(self) -> int:
        """Return the total number of terms across all attributes."""
        return sum(len(table) for table in self.terms.values())


def default_lexicon() -> Lexicon:
    """Return a fresh copy of the default lexicon."""
    return Lexicon(
        terms={attribute: dict(terms) for attribute, terms in _DEFAULT_TERMS.items()}
    )
