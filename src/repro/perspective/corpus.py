"""Materialised corpus score columns for campaign-scale re-labelling.

Every figure and table of the paper re-reads the same post corpus: users
are labelled per instance, instances are re-aggregated per threshold, and
solution evaluations re-label everything again.  Scoring a text only ever
needs two numbers — its token count and its per-attribute summed hit
weights — so :class:`CorpusColumns` interns each distinct text once and
materialises those ``(token_count, hit_vector)`` columns with one batched
compiled-matcher scan.  Every later score is pure arithmetic on the cached
columns; no text is ever re-scanned.

The columns are stamped with the owning lexicon's
:attr:`~repro.perspective.lexicon.Lexicon.version`: ``add_term`` /
``remove_term`` bump it, and the next column access transparently rebuilds
every column from the interned texts, so stale hit vectors can never leak
into an analysis.

Derived scores are bitwise identical to
:meth:`~repro.perspective.scorer.LexiconScorer.score` — the hit vectors
come out of the same token-order accumulation, and the density→score
mapping applies the same operations in the same order.
"""

from __future__ import annotations

from typing import Iterable

from repro.perspective.attributes import AttributeScores
from repro.perspective.scorer import LexiconScorer


class CorpusColumns:
    """Interned texts with materialised ``(token_count, hit_vector)`` columns.

    Parameters
    ----------
    scorer:
        The scorer whose lexicon, gain and ceiling define the scores the
        columns stand for.
    texts:
        The initial corpus (a campaign's collected post bodies).  More
        texts can be added later via :meth:`extend`; duplicates are
        interned to one row.
    """

    def __init__(self, scorer: LexiconScorer, texts: Iterable[str] = ()) -> None:
        self.scorer = scorer
        self.lexicon_version = scorer.lexicon.version
        self._row_of: dict[str, int] = {}
        self._token_counts: list[int] = []
        self._hit_vectors: list[tuple[float, ...] | None] = []
        #: Lazily derived score objects, one per row; re-labelling a user a
        #: second time is a list load, not even arithmetic.
        self._scores: list[AttributeScores | None] = []
        self.rebuilds = 0
        self.extend(texts)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, text: str) -> bool:
        return text in self._row_of

    @property
    def current(self) -> bool:
        """``True`` while the columns match the lexicon they were scanned with."""
        return self.lexicon_version == self.scorer.lexicon.version

    def column(self, text: str) -> tuple[int, tuple[float, ...] | None] | None:
        """Return the ``(token_count, hit_vector)`` column of ``text``.

        ``None`` when the text is not interned.  A zero-hit column is
        ``(0, None)`` — its score is 0.0 on every attribute regardless of
        token count, so the count is never materialised for it.
        """
        self._ensure_current()
        row = self._row_of.get(text)
        if row is None:
            return None
        return (self._token_counts[row], self._hit_vectors[row])

    # ------------------------------------------------------------------ #
    # Building and invalidation
    # ------------------------------------------------------------------ #
    def extend(self, texts: Iterable[str]) -> int:
        """Intern and scan any not-yet-seen texts; return how many were new."""
        self._ensure_current()
        row_of = self._row_of
        fresh = list(dict.fromkeys(text for text in texts if text not in row_of))
        if not fresh:
            return 0
        columns = self.scorer.lexicon.compiled().scan(fresh)
        base = len(self._token_counts)
        for offset, (text, (count, hits)) in enumerate(zip(fresh, columns)):
            row_of[text] = base + offset
            self._token_counts.append(count)
            self._hit_vectors.append(hits)
            self._scores.append(None)
        return len(fresh)

    def refresh(self) -> None:
        """Re-scan every interned text against the lexicon as it is now."""
        order = list(self._row_of)
        columns = self.scorer.lexicon.compiled().scan(order)
        self._token_counts = [count for count, _ in columns]
        self._hit_vectors = [hits for _, hits in columns]
        self._scores = [None] * len(order)
        self.lexicon_version = self.scorer.lexicon.version
        self.rebuilds += 1

    def _ensure_current(self) -> None:
        if self.lexicon_version != self.scorer.lexicon.version:
            self.refresh()

    # ------------------------------------------------------------------ #
    # Score derivation
    # ------------------------------------------------------------------ #
    def scores_for(self, texts: list[str]) -> list[AttributeScores]:
        """Return scores for ``texts``, interning any new ones first.

        The hot path of campaign re-labelling: all-interned batches (every
        batch after the corpus is materialised) derive from the cached
        columns without touching any text.
        """
        self._ensure_current()
        row_of = self._row_of
        if any(text not in row_of for text in texts):
            self.extend(texts)
        scores = self._scores
        derive = self._derive
        return [
            score
            if (score := scores[row]) is not None
            else derive(row)
            for row in map(row_of.__getitem__, texts)
        ]

    def scores_for_text(self, text: str) -> AttributeScores:
        """Return the scores of one text (interning it when new)."""
        return self.scores_for([text])[0]

    def _derive(self, row: int) -> AttributeScores:
        """Derive (and cache) one row's scores from its column.

        Delegates to the scorer's own column→scores mapping so corpus-
        derived and directly-scored values can never drift apart.
        """
        hits = self._hit_vectors[row]
        if hits is None:
            scores = _ZERO_SCORES
        else:
            scores = self.scorer._scores_from_column(self._token_counts[row], hits)
        self._scores[row] = scores
        return scores


#: Shared all-zero scores (frozen, so one instance serves every zero row).
_ZERO_SCORES = AttributeScores()
