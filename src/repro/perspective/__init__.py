"""A Perspective-API substitute for offline harmfulness scoring.

The paper annotates posts with Google's Perspective API, scoring three
attributes — toxicity, profanity and sexually-explicit content — each as a
probability in [0, 1].  The real API is a remote service; this package
provides a deterministic, lexicon-based substitute exposing the same
interface the analysis needs: per-attribute scores per text, a client with
request batching, caching and rate accounting, and the same 0.8 "harmful"
threshold convention the paper uses.

Because the synthetic post generator (:mod:`repro.synth`) plants harmful
vocabulary with a controlled density, the scorer recovers the planted
per-user and per-instance harmfulness in the same way Perspective recovered
it for real posts — which is what preserves the paper's collateral-damage
analysis.
"""

from repro.perspective.attributes import (
    ATTRIBUTES,
    Attribute,
    AttributeScores,
    HARMFUL_THRESHOLD,
)
from repro.perspective.client import AnalysisResult, PerspectiveClient, RateLimitExceeded
from repro.perspective.corpus import CorpusColumns
from repro.perspective.lexicon import Lexicon, default_lexicon
from repro.perspective.matcher import CompiledLexiconMatcher
from repro.perspective.scorer import LexiconScorer, density_for_score, score_for_density

__all__ = [
    "ATTRIBUTES",
    "Attribute",
    "AttributeScores",
    "HARMFUL_THRESHOLD",
    "AnalysisResult",
    "PerspectiveClient",
    "RateLimitExceeded",
    "CompiledLexiconMatcher",
    "CorpusColumns",
    "Lexicon",
    "default_lexicon",
    "LexiconScorer",
    "density_for_score",
    "score_for_density",
]
