"""The deterministic scorer behind the Perspective substitute.

The scorer converts the *density* of weighted lexicon hits in a text into a
probability-like score in [0, 1].  The mapping is a simple saturating gain:

    score = min(CEILING, GAIN * weighted_hits / tokens)

which has two properties the reproduction relies on:

* it is deterministic and cheap, so millions of synthetic posts can be
  scored during a benchmark run; and
* it is trivially invertible (:func:`density_for_score`), which lets the
  synthetic post generator plant exactly the harmful-term density needed for
  a target score — the mechanism that preserves the paper's ground truth.
"""

from __future__ import annotations

from repro.perspective.attributes import ATTRIBUTES, Attribute, AttributeScores
from repro.perspective.lexicon import Lexicon, default_lexicon, tokenize

#: Gain applied to the harmful-term density.
GAIN = 3.0

#: Scores never exceed this ceiling (Perspective rarely returns exactly 1.0).
CEILING = 0.98


def score_for_density(density: float, gain: float = GAIN, ceiling: float = CEILING) -> float:
    """Map a weighted harmful-term density to a score."""
    if density < 0:
        raise ValueError("density must be non-negative")
    return min(ceiling, gain * density)


def density_for_score(score: float, gain: float = GAIN, ceiling: float = CEILING) -> float:
    """Return the density required to reach ``score`` (the scorer's inverse).

    Scores above the ceiling are unreachable and raise ``ValueError``.
    """
    if not 0.0 <= score <= 1.0:
        raise ValueError("score must be within [0, 1]")
    if score > ceiling:
        raise ValueError(f"scores above the ceiling ({ceiling}) are unreachable")
    return score / gain


class LexiconScorer:
    """Score texts on the three Perspective attributes using a lexicon."""

    def __init__(
        self,
        lexicon: Lexicon | None = None,
        gain: float = GAIN,
        ceiling: float = CEILING,
    ) -> None:
        if gain <= 0:
            raise ValueError("gain must be positive")
        if not 0 < ceiling <= 1:
            raise ValueError("ceiling must be within (0, 1]")
        self.lexicon = lexicon or default_lexicon()
        self.gain = gain
        self.ceiling = ceiling

    def score_attribute(self, text: str, attribute: Attribute) -> float:
        """Score ``text`` on a single attribute."""
        tokens = tokenize(text)
        if not tokens:
            return 0.0
        hits = self.lexicon.weighted_hits(attribute, tokens)
        return score_for_density(hits / len(tokens), self.gain, self.ceiling)

    def score(self, text: str) -> AttributeScores:
        """Score ``text`` on every attribute with a single token pass."""
        tokens = tokenize(text)
        if not tokens:
            return AttributeScores()
        all_hits = self.lexicon.weighted_hits_all(tokens)
        count = len(tokens)
        values = {
            attribute.value: score_for_density(hits / count, self.gain, self.ceiling)
            for attribute, hits in zip(ATTRIBUTES, all_hits)
        }
        return AttributeScores(**values)

    def score_many(self, texts: list[str]) -> list[AttributeScores]:
        """Score several texts, preserving order.

        A genuine batch path: identical texts are tokenized and scored once
        (federated posts are observed from several instances), and every
        distinct text shares the single-pass scoring structure of
        :meth:`score`.
        """
        scored: dict[str, AttributeScores] = {}
        results = []
        for text in texts:
            scores = scored.get(text)
            if scores is None:
                scores = self.score(text)
                scored[text] = scores
            results.append(scores)
        return results
