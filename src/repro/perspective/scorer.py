"""The deterministic scorer behind the Perspective substitute.

The scorer converts the *density* of weighted lexicon hits in a text into a
probability-like score in [0, 1].  The mapping is a simple saturating gain:

    score = min(CEILING, GAIN * weighted_hits / tokens)

which has two properties the reproduction relies on:

* it is deterministic and cheap, so millions of synthetic posts can be
  scored during a benchmark run; and
* it is trivially invertible (:func:`density_for_score`), which lets the
  synthetic post generator plant exactly the harmful-term density needed for
  a target score — the mechanism that preserves the paper's ground truth.
"""

from __future__ import annotations

from repro.perspective.attributes import ATTRIBUTES, Attribute, AttributeScores
from repro.perspective.lexicon import Lexicon, default_lexicon

#: Attribute field names in vector order (for the hot construction path).
_FIELD_NAMES = tuple(attribute.value for attribute in ATTRIBUTES)

#: Gain applied to the harmful-term density.
GAIN = 3.0

#: Scores never exceed this ceiling (Perspective rarely returns exactly 1.0).
CEILING = 0.98


def score_for_density(density: float, gain: float = GAIN, ceiling: float = CEILING) -> float:
    """Map a weighted harmful-term density to a score."""
    if density < 0:
        raise ValueError("density must be non-negative")
    return min(ceiling, gain * density)


def density_for_score(score: float, gain: float = GAIN, ceiling: float = CEILING) -> float:
    """Return the density required to reach ``score`` (the scorer's inverse).

    Scores above the ceiling are unreachable and raise ``ValueError``.
    """
    if not 0.0 <= score <= 1.0:
        raise ValueError("score must be within [0, 1]")
    if score > ceiling:
        raise ValueError(f"scores above the ceiling ({ceiling}) are unreachable")
    return score / gain


class LexiconScorer:
    """Score texts on the three Perspective attributes using a lexicon."""

    def __init__(
        self,
        lexicon: Lexicon | None = None,
        gain: float = GAIN,
        ceiling: float = CEILING,
    ) -> None:
        if gain <= 0:
            raise ValueError("gain must be positive")
        if not 0 < ceiling <= 1:
            raise ValueError("ceiling must be within (0, 1]")
        self.lexicon = lexicon or default_lexicon()
        self.gain = gain
        self.ceiling = ceiling

    def score_attribute(self, text: str, attribute: Attribute) -> float:
        """Score ``text`` on a single attribute.

        Routed through the compiled merged-lexicon engine like
        :meth:`score`: one boundary-anchored alternation scan finds the
        hits, a counting-only pass supplies the denominator, and the
        requested attribute's component is read from the merged weight
        vectors.  Skipping the other attributes' components (and every
        zero-weight token) is the float identity, so the result is bitwise
        identical to the seed's per-attribute token walk.
        """
        matcher = self.lexicon.compiled()
        lowered = text.lower()
        hits = matcher.hits(lowered)
        if hits is None:
            # Either no tokens at all (the seed's 0.0) or only tokens the
            # lexicon ignores (density 0.0 -> score 0.0 either way).
            return 0.0
        position = ATTRIBUTES.index(attribute)
        count = matcher.count_tokens(lowered)
        return score_for_density(hits[position] / count, self.gain, self.ceiling)

    def score(self, text: str) -> AttributeScores:
        """Score ``text`` on every attribute via the compiled engine.

        Costs two C-level regex scans — the compiled lexicon alternation
        plus the counting-only token pass — instead of a materialised
        token list and per-token dict lookups; zero-hit texts (the common
        case) skip the counting pass entirely.
        """
        matcher = self.lexicon.compiled()
        lowered = text.lower()
        hits = matcher.hits(lowered)
        if hits is None:
            return AttributeScores()
        return self._scores_from_column(matcher.count_tokens(lowered), hits)

    def _scores_from_column(
        self, count: int, hits: tuple[float, ...]
    ) -> AttributeScores:
        """Derive :class:`AttributeScores` from a ``(count, hits)`` column.

        Hot path: built via ``__new__``/``__dict__`` to skip the frozen-
        dataclass ``object.__setattr__`` walk and the range re-validation —
        ``min(ceiling, gain * non-negative density)`` is in range by
        construction, and the result is indistinguishable from one built
        through the constructor (still immutable to callers).
        """
        gain = self.gain
        ceiling = self.ceiling
        scores = object.__new__(AttributeScores)
        scores.__dict__.update(
            zip(
                _FIELD_NAMES,
                (min(ceiling, gain * (weight / count)) for weight in hits),
            )
        )
        return scores

    def score_many(self, texts: list[str]) -> list[AttributeScores]:
        """Score several texts, preserving order.

        A genuine batch path: identical texts are scored once (federated
        posts are observed from several instances) and the distinct texts
        go through the compiled engine's batched corpus scan — one blob
        pass instead of one scan call per text.
        """
        slots: dict[str, AttributeScores] = dict.fromkeys(texts)  # C-level dedup
        order = list(slots)
        matcher = self.lexicon.compiled()
        zero = AttributeScores()
        derive = self._scores_from_column
        for text, (count, hits) in zip(order, matcher.scan(order)):
            slots[text] = zero if hits is None else derive(count, hits)
        return [slots[text] for text in texts]
