"""Retry, backoff and circuit-breaking policy for the resilient client.

The policy side of the fault story: :class:`RetryPolicy` describes when a
failed request is worth re-issuing and how long the client backs off
between attempts; :class:`ResilienceConfig` bundles the policy with the
campaign-level degradation knobs.  All delays are *simulated* seconds —
the client charges them to the registry's :class:`SimulationClock`, never
to wall-clock time — and jitter draws from per-domain RNG streams keyed
by the policy's own seed, so retry timing is as reproducible as the
faults that trigger it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.api.http import HTTPResponse

#: Statuses the base simulated server never emits, so retrying them can
#: never change a zero-fault crawl: 408/429/500/504 are injector-only.
TRANSIENT_STATUSES = frozenset({408, 429, 500, 504})


@dataclass(frozen=True)
class RetryPolicy:
    """How the client retries transient failures.

    A response is *transient* — and therefore retryable — only when it
    carries a signal the base server can never produce: a status in
    :data:`TRANSIENT_STATUSES`, a ``Retry-After`` header, or a malformed
    (non-JSON) 200 body.  Permanent failures (404/403/410, a dead
    instance's 5xx) are never retried, which is what keeps a zero-fault
    resilient crawl bit-identical to the plain engine.
    """

    #: Total attempts per logical request, including the first.
    max_attempts: int = 3
    base_backoff_seconds: float = 1.0
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 60.0
    #: Fractional jitter: each delay is scaled by ``1 + jitter * u`` with
    #: ``u`` drawn from the domain's dedicated jitter stream.
    jitter: float = 0.5
    #: Seed of the per-domain jitter streams (``"{seed}:jitter:{domain}"``).
    seed: int = 99
    #: Retries a single domain may consume across the whole campaign.
    retry_budget_per_domain: int = 12
    #: Honour ``Retry-After`` headers instead of exponential backoff.
    honour_retry_after: bool = True
    #: Consecutive transient-failure ceiling before the breaker opens.
    breaker_threshold: int = 5
    #: Simulated seconds an open breaker short-circuits a domain for.
    breaker_cooldown_seconds: float = 900.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.retry_budget_per_domain < 0:
            raise ValueError("retry_budget_per_domain must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown_seconds < 0:
            raise ValueError("breaker_cooldown_seconds must be non-negative")

    def transient(self, response: HTTPResponse) -> bool:
        """Return ``True`` when ``response`` is worth retrying."""
        if int(response.status) in TRANSIENT_STATUSES:
            return True
        if response.retry_after is not None:
            return True
        # A malformed 200 body is normalised to a 502 before it reaches
        # this check, tagged with its fault kind; the base server never
        # sets the fault header, so this too is injector-only.
        return response.fault_kind == "malformed"

    def jitter_stream(self, domain: str) -> random.Random:
        """Return a fresh dedicated jitter stream for ``domain``."""
        return random.Random(f"{self.seed}:jitter:{domain}")

    def backoff_seconds(
        self,
        attempt: int,
        rng: random.Random,
        retry_after: float | None = None,
    ) -> float:
        """Simulated seconds to wait before attempt ``attempt + 1``.

        ``attempt`` is 1-based (the attempt that just failed).  A server
        hint wins outright when honoured — the jitter stream still
        advances once per wait, so delay sources cannot desynchronise
        replays.
        """
        jitter_draw = rng.random()
        if self.honour_retry_after and retry_after is not None:
            return max(retry_after, 0.0)
        delay = min(
            self.base_backoff_seconds * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_seconds,
        )
        return delay * (1.0 + self.jitter * jitter_draw)


@dataclass(frozen=True)
class ResilienceConfig:
    """Campaign-level resilience: the retry policy plus degradation knobs."""

    retry_policy: RetryPolicy | None = field(default_factory=RetryPolicy)
    #: Re-snapshot domains whose snapshot-round failure was fault-attributed
    #: (one extra pass at the end of the round).
    round_retry: bool = True

    @classmethod
    def default(cls) -> "ResilienceConfig":
        """The stock resilient configuration."""
        return cls()

    @classmethod
    def disabled(cls) -> "ResilienceConfig":
        """No retries, no round salvage — the plain PR 4 engine behaviour."""
        return cls(retry_policy=None, round_retry=False)
