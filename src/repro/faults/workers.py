"""Deterministic process-level fault schedules for the sharded engine.

PR 6's :class:`~repro.faults.plan.FaultPlan` makes the simulated *network*
misbehave reproducibly; this module does the same one level down, for the
sharded federation engine's *worker processes*.  A
:class:`WorkerFaultSpec` names how often (and how) forked shard workers
die; :meth:`WorkerFaultPlan.compile` turns it into a per-shard schedule —
which fault kind fires on which delivery attempt — that the
:class:`~repro.shard.supervisor.ShardSupervisor` injects into
``_shard_worker`` exactly the way :class:`~repro.faults.injector.
FaultInjector` wraps the API server: at the process boundary, scripted by
the plan, never by ambient randomness.

Determinism contract (mirroring :mod:`repro.faults.plan`):

- Compilation walks shards in index order drawing from one dedicated RNG
  seeded by ``spec.seed``, so the same spec compiled for the same shard
  count always yields the same schedules.
- A shard's schedule is a tuple of fault kinds indexed by attempt number;
  every attempt past the end of the tuple runs clean.  Because each
  shard's batch slice is a pure function of the partition, re-executing a
  failed shard — in a fresh fork or inline — produces bit-identical
  output, which is what lets the supervisor promise a fault-free merge no
  matter which workers died.
- The zero-share spec is provably inert: it compiles to an empty plan and
  :meth:`WorkerFaultPlan.fault_for` always answers ``None``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class WorkerFaultKind(str, Enum):
    """Every way an injected shard worker can die."""

    #: ``os._exit`` before the worker even receives its batch slice — the
    #: coordinator sees a broken input pipe or an immediate result EOF.
    CRASH_EARLY = "crash_early"
    #: The worker delivers its whole slice, then ``os._exit``\ s instead of
    #: sending the capture — all the work done, none of it reported.
    CRASH_LATE = "crash_late"
    #: The worker receives its slice and then sleeps forever; only the
    #: supervisor's inactivity deadline can unblock the run.
    HANG = "hang"
    #: The worker sends unpicklable garbage bytes instead of a
    #: :class:`~repro.shard.state.ShardResult`.
    CORRUPT = "corrupt"
    #: The worker raises — the clean failure path: a traceback comes back
    #: through the normal ``("error", ...)`` report.
    ERROR = "error"


@dataclass(frozen=True)
class WorkerFaultSpec:
    """The knobs of one worker-fault mix.

    Share-style knobs select the probability that a *shard* is afflicted
    with the corresponding death; ``faulty_attempts`` is how many
    consecutive delivery attempts fail before the shard's worker runs
    clean (set it at or above the supervisor's forked-attempt budget to
    force the inline fallback).  All defaults are zero: the default spec
    is the zero-fault plan.
    """

    #: Seed of the dedicated worker-fault RNG stream (never shared with
    #: the generator's or the network fault plan's streams).
    seed: int = 4242
    crash_early_share: float = 0.0
    crash_late_share: float = 0.0
    hang_share: float = 0.0
    corrupt_share: float = 0.0
    error_share: float = 0.0
    faulty_attempts: int = 1

    def __post_init__(self) -> None:
        for name in (
            "crash_early_share",
            "crash_late_share",
            "hang_share",
            "corrupt_share",
            "error_share",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.faulty_attempts < 1:
            raise ValueError("faulty_attempts must be at least 1")

    @property
    def inert(self) -> bool:
        """Return ``True`` when this spec can never kill a worker."""
        return (
            self.crash_early_share == 0.0
            and self.crash_late_share == 0.0
            and self.hang_share == 0.0
            and self.corrupt_share == 0.0
            and self.error_share == 0.0
        )

    @classmethod
    def none(cls, seed: int = 4242) -> "WorkerFaultSpec":
        """The zero-fault spec (compiles to an empty, provably inert plan)."""
        return cls(seed=seed)

    @classmethod
    def profile(cls, name: str, seed: int = 4242) -> "WorkerFaultSpec":
        """Return a named profile (``none``/``light``/``mixed``/``heavy``)."""
        try:
            overrides = WORKER_FAULT_PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown worker fault profile {name!r}; "
                f"available: {', '.join(sorted(WORKER_FAULT_PROFILES))}"
            ) from None
        return cls(seed=seed, **overrides)

    @classmethod
    def for_config(cls, config) -> "WorkerFaultSpec":
        """Build the spec a :class:`~repro.synth.config.SynthConfig` names.

        Reads the config's ``worker_fault_profile``/``worker_fault_seed``
        knobs, so a scenario fully describes the process weather its
        sharded runs are supervised under.
        """
        return cls.profile(
            getattr(config, "worker_fault_profile", "none"),
            seed=getattr(config, "worker_fault_seed", 4242),
        )


#: Named worker-fault mixes, applied as overrides on top of the zero defaults.
WORKER_FAULT_PROFILES: dict[str, dict] = {
    "none": {},
    # An occasional dead worker: the common production failure.
    "light": {"crash_early_share": 0.2, "crash_late_share": 0.1},
    # Every death kind fires, none dominates — the shard-chaos default.
    "mixed": {
        "crash_early_share": 0.15,
        "crash_late_share": 0.15,
        "hang_share": 0.10,
        "corrupt_share": 0.10,
        "error_share": 0.10,
    },
    # Most shards lose a worker somehow, some repeatedly.
    "heavy": {
        "crash_early_share": 0.25,
        "crash_late_share": 0.2,
        "hang_share": 0.15,
        "corrupt_share": 0.15,
        "error_share": 0.15,
        "faulty_attempts": 2,
    },
}


class WorkerFaultPlan:
    """A worker-fault spec compiled against a shard count.

    ``schedules`` maps shard index to the tuple of fault kinds its
    successive delivery attempts are killed with; attempts past the tuple
    run clean.  The plan is immutable once compiled and pure to query, so
    the supervisor's retry loop is as deterministic as the spec.
    """

    def __init__(
        self,
        n_shards: int,
        schedules: dict[int, tuple[WorkerFaultKind, ...]],
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        for shard in schedules:
            if not 0 <= shard < n_shards:
                raise ValueError(f"shard {shard} outside [0, {n_shards})")
        self.n_shards = n_shards
        self.schedules = {
            shard: tuple(kinds) for shard, kinds in schedules.items() if kinds
        }

    @property
    def inert(self) -> bool:
        """Return ``True`` when this plan can never kill a worker."""
        return not self.schedules

    def fault_for(self, shard: int, attempt: int) -> WorkerFaultKind | None:
        """Return the fault killing ``shard``'s ``attempt``, or ``None``."""
        schedule = self.schedules.get(shard)
        if schedule is None or attempt >= len(schedule):
            return None
        return schedule[attempt]

    @classmethod
    def scripted(
        cls,
        n_shards: int,
        schedules: dict[int, "WorkerFaultKind | tuple[WorkerFaultKind, ...]"],
    ) -> "WorkerFaultPlan":
        """Build an explicit plan (tests and the bench's per-kind gates).

        A bare kind is shorthand for a single first-attempt failure.
        """
        normalised = {
            shard: (kinds,) if isinstance(kinds, WorkerFaultKind) else tuple(kinds)
            for shard, kinds in schedules.items()
        }
        return cls(n_shards, normalised)

    @classmethod
    def compile(cls, spec: WorkerFaultSpec, n_shards: int) -> "WorkerFaultPlan":
        """Compile ``spec`` for ``n_shards`` shards.

        Walks shards in index order drawing from one dedicated stream; a
        shard is afflicted with the *first* kind whose share-roll hits (a
        worker dies one way at a time) and fails ``spec.faulty_attempts``
        consecutive attempts with it.
        """
        if spec.inert:
            return cls(n_shards, {})
        rng = random.Random(f"{spec.seed}:workers")
        rolls = (
            (WorkerFaultKind.CRASH_EARLY, spec.crash_early_share),
            (WorkerFaultKind.CRASH_LATE, spec.crash_late_share),
            (WorkerFaultKind.HANG, spec.hang_share),
            (WorkerFaultKind.CORRUPT, spec.corrupt_share),
            (WorkerFaultKind.ERROR, spec.error_share),
        )
        schedules: dict[int, tuple[WorkerFaultKind, ...]] = {}
        for shard in range(n_shards):
            for kind, share in rolls:
                if share and rng.random() < share:
                    schedules[shard] = (kind,) * spec.faulty_attempts
                    break
        return cls(n_shards, schedules)
