"""Deterministic fault injection for the simulated crawl transport.

The paper's numbers come from a months-long crawl of a *live* fediverse:
instances flap, time out, rate-limit and return garbage, and the crawler
recovers or degrades.  This package makes the simulated network misbehave
the same way — reproducibly — so the crawl engine's resilience and the
measurement bias it cannot avoid can both be quantified.

The pieces:

- :class:`~repro.faults.plan.FaultSpec` — the knobs of a fault mix
  (transient 5xx windows, timeouts, 429 rate limiting with ``Retry-After``,
  flapping availability intervals, truncated timeline pages, malformed
  bodies), with named profiles (``none``/``light``/``mixed``/``heavy``).
- :class:`~repro.faults.plan.FaultPlan` — a spec compiled against a domain
  population and a campaign window: per-domain outage/rate-limit/flap
  schedules plus per-request fault streams.
- :class:`~repro.faults.injector.FaultInjector` — wraps the
  client→server transport (:class:`~repro.api.server.FediverseAPIServer`'s
  single-request and batch entry points) and injects the plan's faults.
- :class:`~repro.faults.retry.RetryPolicy` /
  :class:`~repro.faults.retry.ResilienceConfig` — the crawl side:
  capped exponential backoff with deterministic jitter, per-domain retry
  budgets, ``Retry-After`` honoured, and a per-domain circuit breaker
  (wired into :class:`~repro.api.client.APIClient`).
- :class:`~repro.faults.workers.WorkerFaultSpec` /
  :class:`~repro.faults.workers.WorkerFaultPlan` — the process level:
  deterministic per-shard schedules of worker deaths (crash before/after
  delivery, hangs, corrupt result pickles) injected into the sharded
  federation engine's forked workers and recovered from by
  :class:`~repro.shard.supervisor.ShardSupervisor`.

Determinism contract
--------------------

Everything this package does is a pure function of the fault seed, the
domain population and the simulated clock — **never** of wall-clock time
or process-global RNG state:

- The plan compiles per-domain schedules from one dedicated RNG stream
  seeded by ``FaultSpec.seed``, walking domains in sorted order, so the
  same spec compiled against the same population is identical.
- Per-request fault decisions draw from *per-domain* streams seeded with
  the stable string ``"{seed}:{domain}"`` (CPython seeds strings through
  SHA-512, which is stable across processes and platforms), so a domain's
  fault sequence depends only on how many requests *it* has received, not
  on how requests interleave across domains.
- Retry jitter draws from per-domain streams keyed by the retry policy's
  own seed; backoff, ``Retry-After`` waits and timeout costs advance the
  *simulated* campaign clock.

Consequences, both enforced by tests and the ``chaos`` bench stage: two
runs with the same fault seed are bit-identical (same ``CrawlResult``,
same failure order, same request accounting), and a zero-fault plan is
provably inert — :meth:`FaultPlan.wrap` returns the unwrapped server, so
the crawl is byte-for-byte the engine of PR 4.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_PROFILES, FaultKind, FaultPlan, FaultSpec
from repro.faults.retry import ResilienceConfig, RetryPolicy
from repro.faults.workers import (
    WORKER_FAULT_PROFILES,
    WorkerFaultKind,
    WorkerFaultPlan,
    WorkerFaultSpec,
)

__all__ = [
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ResilienceConfig",
    "RetryPolicy",
    "WORKER_FAULT_PROFILES",
    "WorkerFaultKind",
    "WorkerFaultPlan",
    "WorkerFaultSpec",
]
