"""The fault injector: a misbehaving twin of the API server transport.

:class:`FaultInjector` exposes the exact transport surface
:class:`~repro.api.client.APIClient` consumes — ``get``, ``handle_batch``,
``metadata_round``, ``stream_timeline`` — and decides, per logical request,
whether the plan injects a fault or the inner server answers.  Batch calls
keep the engine's single-instant contract: faults are decided for the whole
group at the group's timestamp, the clean subset is served by one inner
batch call, and the responses are spliced back in request order.  Timeout
costs are charged to the simulated clock *after* the batch is served, so a
batch still models one instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api.http import (
    FAULT_HEADER,
    RETRY_AFTER_HEADER,
    HTTPRequest,
    HTTPResponse,
    HTTPStatus,
)
from repro.api.server import (
    MAX_TIMELINE_LIMIT,
    FediverseAPIServer,
    TimelineStream,
    count_timeline_pages,
)
from repro.faults.plan import DomainFaultSchedule, FaultKind, FaultPlan

#: The garbage body of a malformed-JSON fault: a 200 whose payload is not
#: JSON at all (upstream proxies love serving HTML error pages with 200s).
MALFORMED_BODY = "<html><body><h1>502 Bad Gateway</h1></body></html>"


@dataclass
class FaultStats:
    """What the injector actually did, by fault kind."""

    injected: dict[str, int] = field(default_factory=dict)
    #: Posts silently dropped from truncated timeline streams.
    truncated_posts: int = 0
    #: Simulated seconds charged to the clock by timed-out requests.
    timeout_seconds: float = 0.0

    def count(self, kind: FaultKind) -> None:
        """Record one injected fault."""
        key = kind.value
        self.injected[key] = self.injected.get(key, 0) + 1

    @property
    def total(self) -> int:
        """Return how many faults were injected in total."""
        return sum(self.injected.values())


class FaultInjector:
    """Wrap a :class:`FediverseAPIServer` behind a compiled fault plan."""

    def __init__(self, server: FediverseAPIServer, plan: FaultPlan) -> None:
        self.server = server
        self.plan = plan
        self.stats = FaultStats()
        self._spec = plan.spec

    # ------------------------------------------------------------------ #
    # Transport passthroughs the client relies on
    # ------------------------------------------------------------------ #
    @property
    def registry(self):
        """The inner server's registry (clock access for the client)."""
        return self.server.registry

    @property
    def requests_served(self) -> int:
        """Requests the *inner* server actually served (faults excluded)."""
        return self.server.requests_served

    # ------------------------------------------------------------------ #
    # Fault decisions
    # ------------------------------------------------------------------ #
    def _fault_response(
        self, kind: FaultKind, retry_after: float | None = None
    ) -> HTTPResponse:
        self.stats.count(kind)
        headers = {FAULT_HEADER: kind.value}
        if retry_after is not None:
            headers[RETRY_AFTER_HEADER] = f"{retry_after:g}"
        if kind is FaultKind.TRANSIENT:
            return HTTPResponse.error(
                HTTPStatus.INTERNAL_SERVER_ERROR, "transient server error", headers
            )
        if kind is FaultKind.TIMEOUT:
            self.stats.timeout_seconds += self._spec.timeout_seconds
            return HTTPResponse.error(
                HTTPStatus.GATEWAY_TIMEOUT, "request timed out", headers
            )
        if kind is FaultKind.RATE_LIMIT:
            return HTTPResponse.error(
                HTTPStatus.TOO_MANY_REQUESTS, "rate limited", headers
            )
        if kind is FaultKind.FLAP:
            return HTTPResponse.error(
                HTTPStatus.SERVICE_UNAVAILABLE, "instance flapping", headers
            )
        # Malformed: a 200 whose body is unparseable garbage.
        return HTTPResponse(
            status=HTTPStatus.OK, body=MALFORMED_BODY, headers=headers
        )

    def _decide(
        self, schedule: DomainFaultSchedule, now: float, document: bool
    ) -> HTTPResponse | None:
        """Return the injected response for one request, or ``None``.

        Scheduled (window) faults are checked first — they are functions of
        time only and draw no randomness.  Per-request faults then advance
        the domain's dedicated stream once per enabled kind, in a fixed
        order, so the domain's fault sequence is reproducible.
        ``document`` selects JSON-document endpoints (the only ones that
        can return a malformed body).
        """
        spec = self._spec
        if schedule.transient_at(now):
            return self._fault_response(FaultKind.TRANSIENT)
        if schedule.rate_limited_at(now):
            return self._fault_response(
                FaultKind.RATE_LIMIT, retry_after=spec.rate_limit_retry_after
            )
        if schedule.flapping_down_at(now):
            return self._fault_response(FaultKind.FLAP)
        if spec.timeout_rate and schedule.rng.random() < spec.timeout_rate:
            return self._fault_response(FaultKind.TIMEOUT)
        if (
            document
            and spec.malformed_rate
            and schedule.rng.random() < spec.malformed_rate
        ):
            return self._fault_response(FaultKind.MALFORMED)
        return None

    def _charge_timeouts(self, before: float) -> None:
        """Advance the simulated clock by timeout costs accrued since ``before``."""
        waited = self.stats.timeout_seconds - before
        if waited > 0:
            self.server.registry.clock.advance(waited)

    # ------------------------------------------------------------------ #
    # Transport entry points (the APIClient surface)
    # ------------------------------------------------------------------ #
    def get(self, domain: str, url: str, *, user_agent: str = "") -> HTTPResponse:
        """Serve one GET, possibly injecting a fault."""
        schedule = self.plan.schedule_for(domain)
        if schedule is None:
            return self.server.get(domain, url, user_agent=user_agent)
        before = self.stats.timeout_seconds
        injected = self._decide(schedule, self.server.registry.clock.now(), True)
        if injected is None:
            return self.server.get(domain, url, user_agent=user_agent)
        self._charge_timeouts(before)
        return injected

    def handle_batch(
        self,
        domain: str,
        requests: Sequence[HTTPRequest | str],
        *,
        user_agent: str = "",
    ) -> list[HTTPResponse]:
        """Serve a one-domain request group, splicing injected faults in."""
        schedule = self.plan.schedule_for(domain)
        if schedule is None:
            return self.server.handle_batch(domain, requests, user_agent=user_agent)
        now = self.server.registry.clock.now()
        before = self.stats.timeout_seconds
        injected: dict[int, HTTPResponse] = {}
        clean: list[HTTPRequest | str] = []
        for index, request in enumerate(requests):
            fault = self._decide(schedule, now, True)
            if fault is None:
                clean.append(request)
            else:
                injected[index] = fault
        if not injected:
            return self.server.handle_batch(domain, requests, user_agent=user_agent)
        served = (
            iter(self.server.handle_batch(domain, clean, user_agent=user_agent))
            if clean
            else iter(())
        )
        responses = [
            injected[index] if index in injected else next(served)
            for index in range(len(requests))
        ]
        self._charge_timeouts(before)
        return responses

    def metadata_round(
        self, domains: Sequence[str], *, user_agent: str = ""
    ) -> list[HTTPResponse]:
        """Serve a snapshot round's metadata requests, faults spliced in."""
        plan = self.plan
        now = self.server.registry.clock.now()
        before = self.stats.timeout_seconds
        injected: dict[int, HTTPResponse] = {}
        clean: list[str] = []
        for index, domain in enumerate(domains):
            schedule = plan.schedule_for(domain)
            fault = (
                self._decide(schedule, now, True) if schedule is not None else None
            )
            if fault is None:
                clean.append(domain)
            else:
                injected[index] = fault
        if not injected:
            return self.server.metadata_round(domains, user_agent=user_agent)
        served = (
            iter(self.server.metadata_round(clean, user_agent=user_agent))
            if clean
            else iter(())
        )
        responses = [
            injected[index] if index in injected else next(served)
            for index in range(len(domains))
        ]
        self._charge_timeouts(before)
        return responses

    def stream_timeline(
        self,
        domain: str,
        *,
        local: bool = False,
        page_size: int = 20,
        max_posts: int | None = None,
        user_agent: str = "",
    ) -> TimelineStream:
        """Serve a timeline stream, possibly faulted or silently truncated."""
        schedule = self.plan.schedule_for(domain)
        if schedule is None:
            return self.server.stream_timeline(
                domain,
                local=local,
                page_size=page_size,
                max_posts=max_posts,
                user_agent=user_agent,
            )
        spec = self._spec
        now = self.server.registry.clock.now()
        before = self.stats.timeout_seconds
        injected = self._decide(schedule, now, False)
        if injected is not None:
            # A faulted stream costs one page request, like any failed pull.
            self._charge_timeouts(before)
            reason: Any = injected.body
            if not isinstance(reason, str):
                reason = reason.get("error", "")
            return TimelineStream(
                status=injected.status,
                reason=reason,
                statuses=[],
                pages=1,
                retry_after=injected.retry_after,
                fault_kind=injected.fault_kind,
            )
        stream = self.server.stream_timeline(
            domain,
            local=local,
            page_size=page_size,
            max_posts=max_posts,
            user_agent=user_agent,
        )
        if (
            stream.ok
            and stream.statuses
            and spec.truncate_rate
            and schedule.rng.random() < spec.truncate_rate
        ):
            kept = max(1, int(len(stream.statuses) * spec.truncate_keep_share))
            if kept < len(stream.statuses):
                self.stats.count(FaultKind.TRUNCATE)
                self.stats.truncated_posts += len(stream.statuses) - kept
                effective = max(1, min(page_size, MAX_TIMELINE_LIMIT))
                collected, pages = count_timeline_pages(
                    kept, page_size, effective, max_posts
                )
                # Accounting stays honest: the truncated stream reports the
                # page count a client paging the shorter timeline would
                # have produced (the server already counted the full walk,
                # but the *client-visible* stream is authoritative).
                return TimelineStream(
                    status=stream.status,
                    reason=stream.reason,
                    statuses=stream.statuses[:collected],
                    pages=pages,
                )
        return stream
