"""Fault specifications and their compiled per-scenario plans."""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import only for type checking
    from repro.faults.injector import FaultInjector


class FaultKind(str, Enum):
    """Every way the injected transport can misbehave."""

    #: A transient 5xx outage window (answers 500 for a while, then heals).
    TRANSIENT = "transient"
    #: A request that never completes; surfaces as 504 and costs simulated
    #: wall time (the client waited out its read timeout).
    TIMEOUT = "timeout"
    #: HTTP 429 with a ``Retry-After`` header, during rate-limit windows.
    RATE_LIMIT = "rate_limit"
    #: Flapping availability: periodic down intervals answering 503
    #: without any retry hint — indistinguishable from a dead instance.
    FLAP = "flap"
    #: A silently truncated timeline stream (posts missing, no error).
    TRUNCATE = "truncate"
    #: A 200 response whose body is not parseable JSON.
    MALFORMED = "malformed"
    #: Not injected: stamped by the client when its circuit breaker opens.
    CIRCUIT_OPEN = "circuit_open"


@dataclass(frozen=True)
class FaultSpec:
    """The knobs of one fault mix.

    Share-style knobs select the fraction of *domains* afflicted with a
    scheduled misbehaviour (outage windows, rate limiting, flapping);
    rate-style knobs are per-request probabilities drawn from the
    afflicted domain's dedicated stream.  All defaults are zero: the
    default spec is the zero-fault plan.
    """

    #: Seed of the dedicated fault RNG stream (never shared with the
    #: generator's stream, so adding faults cannot perturb generation).
    seed: int = 1337

    # -- transient 5xx outage windows ----------------------------------- #
    transient_share: float = 0.0
    transient_windows: int = 2
    transient_window_seconds: float = 6 * 3600.0

    # -- timeouts -------------------------------------------------------- #
    timeout_rate: float = 0.0
    #: Simulated seconds one timed-out request costs the campaign clock.
    timeout_seconds: float = 30.0

    # -- 429 rate limiting ----------------------------------------------- #
    rate_limit_share: float = 0.0
    rate_limit_windows: int = 3
    rate_limit_window_seconds: float = 2 * 3600.0
    #: The ``Retry-After`` delay advertised during a rate-limit window.
    rate_limit_retry_after: float = 45.0

    # -- flapping availability ------------------------------------------- #
    flap_share: float = 0.0
    flap_period_seconds: float = 12 * 3600.0
    #: Fraction of each flap period the instance spends down (503).
    flap_down_share: float = 0.35

    # -- timeline truncation / malformed bodies -------------------------- #
    truncate_rate: float = 0.0
    #: Fraction of the timeline kept when a stream is truncated.
    truncate_keep_share: float = 0.5
    malformed_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "transient_share",
            "timeout_rate",
            "rate_limit_share",
            "flap_share",
            "flap_down_share",
            "truncate_rate",
            "truncate_keep_share",
            "malformed_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.transient_windows < 0 or self.rate_limit_windows < 0:
            raise ValueError("window counts must be non-negative")
        if self.timeout_seconds < 0:
            raise ValueError("timeout_seconds must be non-negative")
        if self.flap_period_seconds <= 0:
            raise ValueError("flap_period_seconds must be positive")

    @property
    def inert(self) -> bool:
        """Return ``True`` when this spec can never inject a fault."""
        return (
            self.transient_share == 0.0
            and self.timeout_rate == 0.0
            and self.rate_limit_share == 0.0
            and self.flap_share == 0.0
            and self.truncate_rate == 0.0
            and self.malformed_rate == 0.0
        )

    @classmethod
    def none(cls, seed: int = 1337) -> "FaultSpec":
        """The zero-fault spec (provably inert: the plan wraps nothing)."""
        return cls(seed=seed)

    @classmethod
    def profile(cls, name: str, seed: int = 1337) -> "FaultSpec":
        """Return a named fault profile (``none``/``light``/``mixed``/``heavy``)."""
        try:
            overrides = FAULT_PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {name!r}; "
                f"available: {', '.join(sorted(FAULT_PROFILES))}"
            ) from None
        return cls(seed=seed, **overrides)

    @classmethod
    def for_config(cls, config) -> "FaultSpec":
        """Build the spec a :class:`~repro.synth.config.SynthConfig` names.

        Reads the config's ``fault_profile``/``fault_seed`` knobs, so a
        scenario (e.g. ``chaos``) fully describes both its population and
        the network weather its campaign is measured under.
        """
        return cls.profile(
            getattr(config, "fault_profile", "none"),
            seed=getattr(config, "fault_seed", 1337),
        )


#: Named fault mixes, applied as overrides on top of the zero defaults.
FAULT_PROFILES: dict[str, dict] = {
    "none": {},
    # A realistic background hum: a few flappers, rare timeouts.
    "light": {
        "transient_share": 0.05,
        "timeout_rate": 0.005,
        "flap_share": 0.05,
        "truncate_rate": 0.01,
    },
    # The chaos-bench default: every fault kind fires, none dominates.
    "mixed": {
        "transient_share": 0.15,
        "timeout_rate": 0.02,
        "rate_limit_share": 0.10,
        "flap_share": 0.10,
        "truncate_rate": 0.05,
        "malformed_rate": 0.01,
    },
    # A hostile network: most domains misbehave somehow.
    "heavy": {
        "transient_share": 0.30,
        "transient_windows": 3,
        "timeout_rate": 0.05,
        "rate_limit_share": 0.20,
        "flap_share": 0.25,
        "flap_down_share": 0.45,
        "truncate_rate": 0.12,
        "malformed_rate": 0.03,
    },
}


@dataclass
class DomainFaultSchedule:
    """Everything one domain's requests can run into.

    Window lists hold ``(start, end)`` pairs in campaign time, sorted and
    non-overlapping within each kind.  ``rng`` is this domain's dedicated
    per-request stream: timeout/malformed/truncate rolls advance it once
    per opportunity, so the fault sequence a domain sees depends only on
    its own request history.
    """

    domain: str
    rng: random.Random
    transient_windows: list[tuple[float, float]] = field(default_factory=list)
    rate_limit_windows: list[tuple[float, float]] = field(default_factory=list)
    #: Flap geometry: ``(phase_offset, period, down_seconds)`` or ``None``.
    flap: tuple[float, float, float] | None = None

    @staticmethod
    def _in_windows(windows: list[tuple[float, float]], now: float) -> bool:
        if not windows:
            return False
        index = bisect_right(windows, (now, float("inf"))) - 1
        return index >= 0 and windows[index][0] <= now < windows[index][1]

    def transient_at(self, now: float) -> bool:
        """Return ``True`` inside one of this domain's 5xx outage windows."""
        return self._in_windows(self.transient_windows, now)

    def rate_limited_at(self, now: float) -> bool:
        """Return ``True`` inside one of this domain's rate-limit windows."""
        return self._in_windows(self.rate_limit_windows, now)

    def flapping_down_at(self, now: float) -> bool:
        """Return ``True`` when the flap schedule has the instance down."""
        if self.flap is None:
            return False
        offset, period, down_seconds = self.flap
        return (now + offset) % period < down_seconds


class FaultPlan:
    """A fault spec compiled against a domain population and a window.

    Compilation walks the domains in sorted order drawing from one
    dedicated stream seeded by ``spec.seed``, then hands each afflicted
    domain its own per-request stream — see the package docstring for the
    determinism contract.
    """

    def __init__(
        self,
        spec: FaultSpec,
        schedules: dict[str, DomainFaultSchedule],
    ) -> None:
        self.spec = spec
        self.schedules = schedules

    @property
    def inert(self) -> bool:
        """Return ``True`` when this plan can never inject a fault."""
        return self.spec.inert or not self.schedules

    @classmethod
    def compile(
        cls,
        spec: FaultSpec,
        domains: Iterable[str],
        start: float,
        horizon_seconds: float,
    ) -> "FaultPlan":
        """Compile ``spec`` for ``domains`` over ``[start, start + horizon)``."""
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if spec.inert:
            return cls(spec, {})
        rng = random.Random(spec.seed)
        schedules: dict[str, DomainFaultSchedule] = {}
        per_request = spec.timeout_rate or spec.malformed_rate or spec.truncate_rate
        for domain in sorted(set(domains)):
            schedule = DomainFaultSchedule(
                domain=domain,
                rng=random.Random(f"{spec.seed}:{domain}"),
            )
            afflicted = False
            if spec.transient_share and rng.random() < spec.transient_share:
                schedule.transient_windows = cls._windows(
                    rng,
                    spec.transient_windows,
                    spec.transient_window_seconds,
                    start,
                    horizon_seconds,
                )
                afflicted = True
            if spec.rate_limit_share and rng.random() < spec.rate_limit_share:
                schedule.rate_limit_windows = cls._windows(
                    rng,
                    spec.rate_limit_windows,
                    spec.rate_limit_window_seconds,
                    start,
                    horizon_seconds,
                )
                afflicted = True
            if spec.flap_share and rng.random() < spec.flap_share:
                period = spec.flap_period_seconds
                schedule.flap = (
                    rng.random() * period,
                    period,
                    period * spec.flap_down_share,
                )
                afflicted = True
            # Per-request faults hit every domain; scheduled ones only the
            # drawn subset.  Keep the schedule when either applies.
            if afflicted or per_request:
                schedules[domain] = schedule
        return cls(spec, schedules)

    @staticmethod
    def _windows(
        rng: random.Random,
        count: int,
        length: float,
        start: float,
        horizon: float,
    ) -> list[tuple[float, float]]:
        """Place ``count`` non-overlapping-ish windows inside the horizon."""
        length = min(length, horizon)
        windows = []
        for _ in range(count):
            offset = rng.random() * max(horizon - length, 0.0)
            windows.append((start + offset, start + offset + length))
        windows.sort()
        # Merge overlaps so window membership tests are a single bisect.
        merged: list[tuple[float, float]] = []
        for lo, hi in windows:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    def schedule_for(self, domain: str) -> DomainFaultSchedule | None:
        """Return the schedule of ``domain`` (``None`` = never faulted)."""
        return self.schedules.get(domain)

    def wrap(self, server):
        """Wrap ``server`` behind a :class:`FaultInjector` — unless inert.

        The zero-fault plan returns the server itself, which is the
        strongest possible inertness statement: the crawl runs on the
        exact transport object PR 4's engine used.
        """
        if self.inert:
            return server
        from repro.faults.injector import FaultInjector

        return FaultInjector(server, self)

    def rescoped(self, seed: int) -> "FaultPlan":
        """Return an *uncompiled* twin spec with a different seed.

        Convenience for determinism experiments: compile the returned
        spec against the same population to get an independent fault
        universe.
        """
        return replace(self.spec, seed=seed)


def compile_for_campaign(
    spec: FaultSpec,
    registry,
    duration_days: float,
) -> FaultPlan:
    """Compile ``spec`` against every domain of ``registry`` for a crawl.

    The window starts at the registry clock's *current* time — campaigns
    compile their plan at construction, immediately before crawling.
    """
    return FaultPlan.compile(
        spec,
        registry.domains,
        start=registry.clock.now(),
        horizon_seconds=duration_days * 24 * 3600.0,
    )
