"""Delivery of activities between instances, through the receiving MRF."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.activitypub.activities import Activity, create_activity
from repro.fediverse.errors import FederationError, PostNotFoundError
from repro.fediverse.identifiers import normalise_domain, parse_handle
from repro.fediverse.post import Post
from repro.fediverse.registry import FediverseRegistry


@dataclass
class DeliveryReport:
    """The outcome of delivering one activity to one target instance."""

    activity_id: str
    origin_domain: str
    target_domain: str
    accepted: bool
    policy: str = ""
    action: str = ""
    reason: str = ""
    modified: bool = False

    @property
    def rejected(self) -> bool:
        """Return ``True`` when the activity was dropped by the target."""
        return not self.accepted


@dataclass
class FederationStats:
    """Aggregate counters kept by the delivery engine."""

    delivered: int = 0
    accepted: int = 0
    rejected: int = 0
    modified: int = 0
    by_policy: dict[str, int] = field(default_factory=dict)


class FederationDelivery:
    """Deliver activities between instances of a registry.

    Incoming activities are filtered through the target instance's MRF
    pipeline before being applied; this is where moderation policies take
    effect, and the pipeline records the resulting moderation events that the
    analysis later consumes.
    """

    def __init__(self, registry: FediverseRegistry) -> None:
        self.registry = registry
        self.stats = FederationStats()
        self.reports: list[DeliveryReport] = []

    # ------------------------------------------------------------------ #
    # Core delivery
    # ------------------------------------------------------------------ #
    def deliver(self, activity: Activity, target_domain: str) -> DeliveryReport:
        """Deliver one activity to ``target_domain`` and return the outcome."""
        target_domain = normalise_domain(target_domain)
        if target_domain == activity.origin_domain:
            raise FederationError("cannot deliver an activity to its origin instance")
        target = self.registry.get(target_domain)
        self.registry.federate(activity.origin_domain, target_domain)

        decision = target.mrf.filter(activity, now=self.registry.clock.now())
        report = DeliveryReport(
            activity_id=activity.activity_id,
            origin_domain=activity.origin_domain,
            target_domain=target_domain,
            accepted=decision.accepted,
            policy=decision.policy,
            action=decision.action,
            reason=decision.reason,
            modified=decision.modified,
        )
        self._record(report)
        if decision.accepted:
            self._apply(decision.activity, target_domain)
        return report

    def broadcast(self, activity: Activity, target_domains: list[str]) -> list[DeliveryReport]:
        """Deliver one activity to several targets, skipping the origin."""
        reports = []
        for domain in target_domains:
            if normalise_domain(domain) == activity.origin_domain:
                continue
            reports.append(self.deliver(activity, domain))
        return reports

    def federate_post(self, post: Post, target_domains: list[str]) -> list[DeliveryReport]:
        """Wrap ``post`` in a Create activity and deliver it to targets."""
        activity = create_activity(post)
        return self.broadcast(activity, target_domains)

    # ------------------------------------------------------------------ #
    # Application of accepted activities
    # ------------------------------------------------------------------ #
    def _apply(self, activity: Activity, target_domain: str) -> None:
        target = self.registry.get(target_domain)
        if activity.is_create and activity.post is not None:
            target.receive_remote_post(activity.post)
        elif activity.is_delete and isinstance(activity.obj, str):
            post_id = activity.obj.rsplit("/", 1)[-1]
            try:
                target.delete_post(post_id)
            except PostNotFoundError:
                pass
        elif activity.is_follow and isinstance(activity.obj, str):
            self._apply_follow(activity, target)
        # Flag / Announce / other types accepted by the MRF do not change
        # instance state in this model beyond being logged.

    def _apply_follow(self, activity: Activity, target) -> None:
        username, domain = parse_handle(activity.obj)  # type: ignore[arg-type]
        if domain != target.domain or not target.has_user(username):
            return
        followee = target.get_user(username)
        follower_handle = activity.actor.handle
        if follower_handle == followee.handle:
            return
        followee.add_follower(follower_handle)
        try:
            follower = self.registry.find_user(follower_handle)
        except Exception:
            return
        follower.add_following(followee.handle)

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def _record(self, report: DeliveryReport) -> None:
        self.reports.append(report)
        self.stats.delivered += 1
        if report.accepted:
            self.stats.accepted += 1
        else:
            self.stats.rejected += 1
        if report.modified:
            self.stats.modified += 1
        if report.policy:
            self.stats.by_policy[report.policy] = (
                self.stats.by_policy.get(report.policy, 0) + 1
            )
