"""Delivery of activities between instances, through the receiving MRF.

The delivery engine is event-driven: every delivery outcome is a
:class:`DeliveryReport` routed through pluggable :class:`DeliverySink`\\ s.
The default configuration materialises reports into an in-memory list (the
seed behaviour); callers that only need aggregates attach a
:class:`CountingSink`, and measurement campaigns that want moderation edges
without ever holding the full report list attach a :class:`StreamingEdgeSink`
that feeds :meth:`repro.datasets.store.Dataset.add_reject_edge` directly.

Deliveries are batched per target instance: :meth:`FederationDelivery.deliver_batch`
normalises the target domain once, resolves the instance once, and filters
the whole batch through the target's (precompiled) MRF pipeline with a single
shared context.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.activitypub.activities import Activity, ActivityType, create_activity
from repro.fediverse.errors import (
    FederationError,
    PostNotFoundError,
    UnknownInstanceError,
)
from repro.fediverse.identifiers import normalise_domain, parse_handle
from repro.fediverse.instance import Instance
from repro.fediverse.post import Post, Visibility
from repro.fediverse.registry import FediverseRegistry

#: Mirror of :data:`repro.mrf.base.PASS_ACTION` — kept literal so this module
#: does not import the MRF layer (which itself imports activitypub).
PASS_ACTION = "pass"

#: Lazily resolved :class:`repro.mrf.pipeline.StageDecision` (same layering
#: concern as PASS_ACTION: the MRF layer imports activitypub, so the type is
#: looked up on first use instead of at import time).
_STAGE_DECISION: type | None = None


def _stage_decision_type() -> type:
    global _STAGE_DECISION
    if _STAGE_DECISION is None:
        from repro.mrf.pipeline import StageDecision

        _STAGE_DECISION = StageDecision
    return _STAGE_DECISION


@dataclass(slots=True)
class DeliveryReport:
    """The outcome of delivering one activity to one target instance."""

    activity_id: str
    origin_domain: str
    target_domain: str
    accepted: bool
    policy: str = ""
    action: str = ""
    reason: str = ""
    modified: bool = False

    @property
    def rejected(self) -> bool:
        """Return ``True`` when the activity was dropped by the target."""
        return not self.accepted


@dataclass
class FederationStats:
    """Aggregate counters kept by the delivery engine."""

    delivered: int = 0
    accepted: int = 0
    rejected: int = 0
    modified: int = 0
    by_policy: dict[str, int] = field(default_factory=dict)

    def record(self, report: DeliveryReport) -> None:
        """Update the counters from one report."""
        self.delivered += 1
        if report.accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        if report.modified:
            self.modified += 1
        if report.policy:
            self.by_policy[report.policy] = self.by_policy.get(report.policy, 0) + 1

    def merge(self, other: "FederationStats") -> None:
        """Fold another engine's counters into this one.

        The sharded federation engine gives every worker a private stats
        object and merges them on the coordinator; every counter is a plain
        sum, so the merge is order-insensitive.
        """
        self.delivered += other.delivered
        self.accepted += other.accepted
        self.rejected += other.rejected
        self.modified += other.modified
        for policy, count in other.by_policy.items():
            self.by_policy[policy] = self.by_policy.get(policy, 0) + count


class DeliverySink(ABC):
    """Consumer of delivery outcomes.

    Sinks receive every :class:`DeliveryReport` the engine produces, in
    delivery order.  They let callers choose how much state to materialise:
    everything (:class:`ListSink`), aggregates only (:class:`CountingSink`),
    or a live stream into the analysis dataset (:class:`StreamingEdgeSink`).
    """

    @abstractmethod
    def on_report(self, report: DeliveryReport) -> None:
        """Consume one delivery outcome."""


class ListSink(DeliverySink):
    """Materialise every report into a list (the seed behaviour)."""

    def __init__(self, reports: list[DeliveryReport] | None = None) -> None:
        self.reports: list[DeliveryReport] = reports if reports is not None else []

    def on_report(self, report: DeliveryReport) -> None:
        """Append the report."""
        self.reports.append(report)


class CountingSink(DeliverySink):
    """Keep aggregate counters only — O(1) memory regardless of volume."""

    def __init__(self) -> None:
        self.stats = FederationStats()

    def on_report(self, report: DeliveryReport) -> None:
        """Update the counters."""
        self.stats.record(report)


class StreamingEdgeSink(DeliverySink):
    """Stream observed moderation outcomes straight into a dataset.

    Every rejected delivery becomes a
    :class:`~repro.datasets.schema.RejectEdge` (source = the moderating
    target instance, target = the moderated origin) fed directly to
    :meth:`~repro.datasets.store.Dataset.add_reject_edge`, which deduplicates
    — so campaigns can observe delivery-time moderation without ever holding
    the full report list in memory.
    """

    def __init__(self, dataset) -> None:
        from repro.datasets.schema import RejectEdge  # local: avoid layer cycle

        self._dataset = dataset
        self._edge_type = RejectEdge
        self.streamed = 0

    def on_report(self, report: DeliveryReport) -> None:
        """Convert rejected reports into dataset edges."""
        if report.accepted:
            return
        self._dataset.add_reject_edge(
            self._edge_type(
                source=report.target_domain,
                target=report.origin_domain,
                action=report.action or "reject",
            )
        )
        self.streamed += 1


#: Activity types whose payload is a :class:`Post` — their batches go
#: through the per-origin (post-shaped) batch program, never a per-type one.
_POST_CARRYING = frozenset({ActivityType.CREATE, ActivityType.UPDATE})


def _batch_type(activities: list[Activity]) -> ActivityType | None:
    """Return the batch's shared post-less activity type, if it has one.

    Generated batches are type-homogeneous, which is what lets the pipeline
    specialise a per-``(origin, type)`` program; hand-built batches may mix
    types, in which case (``None``) the type-agnostic per-origin program —
    whose predicates all guard on the payload being a post — stays correct.
    """
    first = activities[0].activity_type
    if first in _POST_CARRYING:
        return None
    for activity in activities:
        if activity.activity_type is not first:
            return None
    return first


def apply_accepted(registry: FediverseRegistry, activity: Activity, target: Instance) -> None:
    """Apply an MRF-accepted ``activity`` to the ``target`` instance."""
    if activity.is_create and activity.post is not None:
        target.receive_remote_post(activity.post)
    elif activity.is_delete and isinstance(activity.obj, str):
        post_id = activity.obj.rsplit("/", 1)[-1]
        try:
            target.delete_post(post_id)
        except PostNotFoundError:
            pass
    elif activity.is_follow and isinstance(activity.obj, str):
        _apply_follow(registry, activity, target)
    elif activity.is_announce and isinstance(activity.obj, str):
        target.receive_announce(activity.obj)
    elif activity.is_like and isinstance(activity.obj, str):
        target.receive_like(activity.obj)
    # Flag / other types accepted by the MRF do not change instance state
    # in this model beyond being logged.


def _apply_follow(registry: FediverseRegistry, activity: Activity, target: Instance) -> None:
    username, domain = parse_handle(activity.obj)  # type: ignore[arg-type]
    if domain != target.domain or not target.has_user(username):
        return
    followee = target.get_user(username)
    follower_handle = activity.actor.handle
    if follower_handle == followee.handle:
        return
    followee.add_follower(follower_handle)
    try:
        follower = registry.find_user(follower_handle)
    except Exception:
        return
    follower.add_following(followee.handle)


class FederationDelivery:
    """Deliver activities between instances of a registry.

    Incoming activities are filtered through the target instance's MRF
    pipeline before being applied; this is where moderation policies take
    effect, and the pipeline records the resulting moderation events that the
    analysis later consumes.

    ``sinks`` selects where delivery outcomes go.  When omitted, a
    :class:`ListSink` bound to :attr:`reports` preserves the seed behaviour;
    pass an explicit list of sinks (possibly empty) to avoid materialising
    reports.  Aggregate counters in :attr:`stats` are always maintained.

    ``verifier`` optionally attaches an HTTP-signature verification cost
    model (:class:`repro.protocol.httpsig.HttpSignatureVerifier`): every
    delivery is verified before validation and MRF filtering, with the cost
    charged to the verifier's own simulated clock.  Activities failing
    verification are dropped before delivery (real servers answer 401
    before the MRF ever runs).  ``None`` — the default — performs no
    verification at all, keeping existing runs bit-identical.
    """

    def __init__(
        self,
        registry: FediverseRegistry,
        sinks: Sequence[DeliverySink] | None = None,
        verifier=None,
    ) -> None:
        self.registry = registry
        self.verifier = verifier
        self.stats = FederationStats()
        self.reports: list[DeliveryReport] = []
        #: How many single-origin batches were rejected wholesale by the
        #: shared-decision fast path (see :meth:`deliver_batch`).
        self.batch_rejects = 0
        #: How many single-origin batches had rewrites applied through a
        #: shared content-independent stage (one decision per batch slice)
        #: instead of per-activity policy runs.
        self.batch_rewrites = 0
        if sinks is None:
            self.sinks: list[DeliverySink] = [ListSink(self.reports)]
        else:
            self.sinks = list(sinks)

    def add_sink(self, sink: DeliverySink) -> None:
        """Attach another sink to the engine."""
        self.sinks.append(sink)

    # ------------------------------------------------------------------ #
    # Core delivery
    # ------------------------------------------------------------------ #
    def deliver(self, activity: Activity, target_domain: str) -> DeliveryReport:
        """Deliver one activity to ``target_domain`` and return the outcome."""
        target_domain = normalise_domain(target_domain)
        return self._deliver_to(self.registry.get(target_domain), (activity,))[0]

    def deliver_batch(
        self, activities: Iterable[Activity], target_domain: str
    ) -> list[DeliveryReport]:
        """Deliver several activities to one target and return the outcomes.

        The target domain is normalised and resolved once for the whole
        batch, peer bookkeeping runs once per distinct origin, and the MRF
        pipeline filters the batch with a single shared context.
        """
        target_domain = normalise_domain(target_domain)
        return self._deliver_to(self.registry.get(target_domain), activities)

    def _verified(self, activities: list[Activity]) -> list[Activity]:
        """Run the optional signature verifier over a batch."""
        verifier = self.verifier
        if verifier is None:
            return activities
        return verifier.verified_only(activities)

    def _validate_batch(
        self, target: Instance, activities: list[Activity]
    ) -> set[str]:
        """Reject origin self-delivery and record peer relations (once per origin).

        Returns the distinct origins of the batch, so callers can take the
        shared-decision fast path for origin-pure batches.
        """
        target_domain = target.domain
        registry = self.registry
        origins_seen: set[str] = set()
        # Generated batches are single-origin and share one interned origin
        # string, so the identity check skips the validated common case.
        last: str | None = None
        for activity in activities:
            origin = activity.origin_domain
            if origin is last:
                continue
            if origin == target_domain:
                raise FederationError(
                    "cannot deliver an activity to its origin instance"
                )
            if origin not in origins_seen:
                origins_seen.add(origin)
                # Activity origins and instance domains are normalised on
                # construction, so the fast path is safe here.
                registry.federate_normalised(origin, target_domain)
            last = origin
        return origins_seen

    def _apply_batch(
        self,
        target: Instance,
        activities: list[Activity],
        origins: set[str],
        now: float,
        lean: bool = False,
    ) -> tuple[tuple[str, str, str] | None, list | None]:
        """Run the batch through the target pipeline's shared-decision engine.

        Single-origin batches go through the pipeline's per-origin batch
        program (:meth:`repro.mrf.pipeline.MRFPipeline.apply_batch`), which
        shares origin-pure rejects and content-independent rewrites across
        the batch; mixed-origin batches fall back to the lazy per-activity
        filter.  Returns ``(shared, decisions)`` with the per-activity
        moderation events already logged by the pipeline; ``shared`` set
        means every activity was rejected with that ``(policy, action,
        reason)`` and ``decisions`` is ``None``.
        """
        if len(origins) == 1 and activities:
            shared, decisions, rewrites = target.mrf.apply_batch(
                activities,
                next(iter(origins)),
                now,
                lean=lean,
                activity_type=_batch_type(activities),
            )
            if shared is not None:
                self.batch_rejects += 1
            if rewrites:
                self.batch_rewrites += 1
            return shared, decisions
        return None, target.mrf.filter_batch_lazy(activities, now=now)

    def _deliver_to(
        self, target: Instance, activities: Iterable[Activity]
    ) -> list[DeliveryReport]:
        """Batched delivery core: ``target`` is already resolved."""
        activities = self._verified(list(activities))
        if not activities:
            return []
        origins = self._validate_batch(target, activities)
        registry = self.registry
        target_domain = target.domain
        now = registry.clock.now()

        shared, decisions = self._apply_batch(target, activities, origins, now)
        if shared is not None:
            policy, action, reason = shared
            reports = []
            for activity in activities:
                report = DeliveryReport(
                    activity_id=activity.activity_id,
                    origin_domain=activity.origin_domain,
                    target_domain=target_domain,
                    accepted=False,
                    policy=policy,
                    action=action,
                    reason=reason,
                    modified=False,
                )
                self._record(report)
                reports.append(report)
            return reports

        reports = []
        for activity, decision in zip(activities, decisions):
            if decision is None:
                report = DeliveryReport(
                    activity_id=activity.activity_id,
                    origin_domain=activity.origin_domain,
                    target_domain=target_domain,
                    accepted=True,
                    policy="",
                    action=PASS_ACTION,
                    reason="",
                    modified=False,
                )
                self._record(report)
                apply_accepted(registry, activity, target)
            else:
                report = DeliveryReport(
                    activity_id=activity.activity_id,
                    origin_domain=activity.origin_domain,
                    target_domain=target_domain,
                    accepted=decision.accepted,
                    policy=decision.policy,
                    action=decision.action,
                    reason=decision.reason,
                    modified=decision.modified,
                )
                self._record(report)
                if decision.accepted:
                    apply_accepted(registry, decision.activity, target)
            reports.append(report)
        return reports

    def deliver_batch_counted(
        self, activities: Iterable[Activity], target_domain: str
    ) -> tuple[int, int]:
        """Deliver a batch recording aggregates only; return ``(delivered, rejected)``.

        The streaming fast path of the engine: when no sinks are attached,
        no :class:`DeliveryReport` objects are materialised at all —
        untouched activities go straight from the pipeline's lazy filter to
        application, and only the counters in :attr:`stats` are updated.
        With sinks attached it falls back to :meth:`deliver_batch` so every
        sink still observes the full report stream.
        """
        if self.sinks:
            reports = self.deliver_batch(activities, target_domain)
            rejected = sum(1 for report in reports if not report.accepted)
            return len(reports), rejected

        registry = self.registry
        try:
            # Generated batches carry already-normalised target domains;
            # re-normalise only when the fast lookup misses.
            target = registry.get_normalised(target_domain)
        except UnknownInstanceError:
            target = registry.get(normalise_domain(target_domain))
        activities = self._verified(list(activities))
        if not activities:
            return 0, 0
        origins = self._validate_batch(target, activities)
        now = registry.clock.now()

        shared, decisions = self._apply_batch(
            target, activities, origins, now, lean=True
        )
        if shared is not None:
            policy = shared[0]
            stats = self.stats
            count = len(activities)
            stats.delivered += count
            stats.rejected += count
            stats.by_policy[policy] = stats.by_policy.get(policy, 0) + count
            return count, count

        stats = self.stats
        by_policy = stats.by_policy
        create = ActivityType.CREATE
        # Inlined Create application (the overwhelmingly common case): the
        # origin!=target guard of receive_remote_post already held for the
        # whole batch, so storing the post and updating the whole-known-
        # network timeline happen with prebound locals.
        remote_posts = target.remote_posts
        wkn_add = target.timelines.whole_known_network.add
        public = Visibility.PUBLIC
        stage_decision = _STAGE_DECISION or _stage_decision_type()
        delivered = len(activities)
        accepted = 0
        rejected = 0
        modified = 0
        for activity, decision in zip(activities, decisions):
            if decision is None:
                accepted += 1
                obj = activity.obj
            elif decision.__class__ is stage_decision:
                # A lean shared-stage outcome: the decision metadata is
                # batch-shared and only the rewritten post is materialised.
                by_policy[decision.policy] = by_policy.get(decision.policy, 0) + 1
                if not decision.accepted:
                    rejected += 1
                    continue
                accepted += 1
                modified += 1
                obj = decision.post
            else:
                if decision.policy:
                    by_policy[decision.policy] = by_policy.get(decision.policy, 0) + 1
                if not decision.accepted:
                    rejected += 1
                    continue
                accepted += 1
                if decision.modified:
                    modified += 1
                activity = decision.activity
                obj = activity.obj
            if type(obj) is Post and activity.activity_type is create:
                remote_posts[obj.post_id] = obj
                if obj.visibility is public:
                    extra = obj.extra
                    if not extra or not extra.get(
                        "federated_timeline_removal", False
                    ):
                        wkn_add(obj.post_id)
            else:
                apply_accepted(registry, activity, target)
        stats.delivered += delivered
        stats.accepted += accepted
        stats.rejected += rejected
        stats.modified += modified
        return delivered, rejected

    def broadcast(self, activity: Activity, target_domains: list[str]) -> list[DeliveryReport]:
        """Deliver one activity to several targets, skipping the origin.

        Each target domain is normalised exactly once; duplicate targets and
        the activity's own origin are skipped.
        """
        origin = activity.origin_domain
        reports = []
        seen: set[str] = set()
        for domain in target_domains:
            domain = normalise_domain(domain)
            if domain == origin or domain in seen:
                continue
            seen.add(domain)
            reports.extend(self._deliver_to(self.registry.get(domain), (activity,)))
        return reports

    def federate_post(self, post: Post, target_domains: list[str]) -> list[DeliveryReport]:
        """Wrap ``post`` in a Create activity and deliver it to targets."""
        activity = create_activity(post)
        return self.broadcast(activity, target_domains)

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def _record(self, report: DeliveryReport) -> None:
        self.stats.record(report)
        for sink in self.sinks:
            sink.on_report(report)
