"""ActivityPub-like federation substrate.

Pleroma (and Mastodon) instances interoperate through the ActivityPub
protocol: activities such as ``Create`` (a new post), ``Follow``, ``Delete``
and ``Flag`` (a report) are delivered from the origin instance to the
inboxes of interested remote instances.  Incoming activities pass through the
receiving instance's MRF pipeline (see :mod:`repro.mrf`), which is exactly
where the moderation policies studied by the paper take effect.
"""

from repro.activitypub.activities import (
    Activity,
    ActivityType,
    create_activity,
    delete_activity,
    flag_activity,
    follow_activity,
)
from repro.activitypub.actors import Actor
from repro.activitypub.delivery import (
    CountingSink,
    DeliveryReport,
    DeliverySink,
    FederationDelivery,
    FederationStats,
    ListSink,
    StreamingEdgeSink,
)

__all__ = [
    "Activity",
    "ActivityType",
    "create_activity",
    "delete_activity",
    "flag_activity",
    "follow_activity",
    "Actor",
    "CountingSink",
    "DeliveryReport",
    "DeliverySink",
    "FederationDelivery",
    "FederationStats",
    "ListSink",
    "StreamingEdgeSink",
]
