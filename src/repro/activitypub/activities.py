"""ActivityPub activities exchanged between instances."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from repro.activitypub.actors import Actor
from repro.fediverse.identifiers import normalise_domain
from repro.fediverse.post import Post

_ACTIVITY_COUNTER = itertools.count(1)


class ActivityType(str, Enum):
    """The subset of ActivityPub activity types relevant to moderation."""

    CREATE = "Create"
    FOLLOW = "Follow"
    ACCEPT = "Accept"
    REJECT = "Reject"
    ANNOUNCE = "Announce"
    LIKE = "Like"
    DELETE = "Delete"
    UNDO = "Undo"
    FLAG = "Flag"
    UPDATE = "Update"


@dataclass
class Activity:
    """A single activity sent from one instance to another.

    ``obj`` carries the activity payload: a :class:`Post` for ``Create`` and
    ``Update``, an object URI (string) for
    ``Delete``/``Announce``/``Like``/``Follow`` and a free-form dictionary
    for ``Flag`` (reports).
    """

    activity_id: str
    activity_type: ActivityType
    actor: Actor
    origin_domain: str
    published: float
    obj: Post | str | dict[str, Any] | None = None
    to: tuple[str, ...] = ()
    cc: tuple[str, ...] = ()
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.origin_domain = normalise_domain(self.origin_domain)

    @property
    def is_create(self) -> bool:
        """Return ``True`` for post-creation activities."""
        return self.activity_type is ActivityType.CREATE

    @property
    def is_delete(self) -> bool:
        """Return ``True`` for deletion activities."""
        return self.activity_type is ActivityType.DELETE

    @property
    def is_follow(self) -> bool:
        """Return ``True`` for follow requests."""
        return self.activity_type is ActivityType.FOLLOW

    @property
    def is_flag(self) -> bool:
        """Return ``True`` for reports (Flag activities)."""
        return self.activity_type is ActivityType.FLAG

    @property
    def is_announce(self) -> bool:
        """Return ``True`` for boosts (Announce activities)."""
        return self.activity_type is ActivityType.ANNOUNCE

    @property
    def is_like(self) -> bool:
        """Return ``True`` for favourites (Like activities)."""
        return self.activity_type is ActivityType.LIKE

    @property
    def post(self) -> Post | None:
        """Return the carried post when the payload is one, else ``None``."""
        return self.obj if isinstance(self.obj, Post) else None

    def with_post(self, post: Post) -> "Activity":
        """Return a copy of the activity carrying a rewritten post."""
        copy = replace(self, obj=post)
        copy.extra = dict(self.extra)
        return copy

    def with_flag(self, key: str, value: Any = True) -> "Activity":
        """Return a copy of the activity with an extra flag set."""
        copy = replace(self)
        copy.extra = dict(self.extra)
        copy.extra[key] = value
        if isinstance(copy.obj, Post):
            new_post = copy.obj.with_changes()
            new_post.extra[key] = value
            copy.obj = new_post
        return copy


def _next_id(domain: str) -> str:
    return f"https://{normalise_domain(domain)}/activities/{next(_ACTIVITY_COUNTER)}"


def create_activity(post: Post, actor: Actor | None = None) -> Activity:
    """Wrap a post in a ``Create`` activity ready for federation."""
    actor = actor or Actor.from_handle(post.author, bot=post.is_bot)
    return Activity(
        activity_id=_next_id(post.domain),
        activity_type=ActivityType.CREATE,
        actor=actor,
        origin_domain=post.domain,
        published=post.created_at,
        obj=post,
        to=("https://www.w3.org/ns/activitystreams#Public",)
        if post.is_public
        else (),
    )


def delete_activity(post_uri: str, actor: Actor, published: float) -> Activity:
    """Build a ``Delete`` activity for a previously federated post."""
    return Activity(
        activity_id=_next_id(actor.domain),
        activity_type=ActivityType.DELETE,
        actor=actor,
        origin_domain=actor.domain,
        published=published,
        obj=post_uri,
    )


def announce_activity(post_uri: str, actor: Actor, published: float) -> Activity:
    """Build an ``Announce`` (boost) of a previously federated post."""
    return Activity(
        activity_id=_next_id(actor.domain),
        activity_type=ActivityType.ANNOUNCE,
        actor=actor,
        origin_domain=actor.domain,
        published=published,
        obj=post_uri,
        to=("https://www.w3.org/ns/activitystreams#Public",),
    )


def like_activity(post_uri: str, actor: Actor, published: float) -> Activity:
    """Build a ``Like`` (favourite) of a previously federated post."""
    return Activity(
        activity_id=_next_id(actor.domain),
        activity_type=ActivityType.LIKE,
        actor=actor,
        origin_domain=actor.domain,
        published=published,
        obj=post_uri,
    )


def follow_activity(follower: Actor, followee_handle: str, published: float) -> Activity:
    """Build a ``Follow`` request from ``follower`` towards ``followee_handle``."""
    return Activity(
        activity_id=_next_id(follower.domain),
        activity_type=ActivityType.FOLLOW,
        actor=follower,
        origin_domain=follower.domain,
        published=published,
        obj=followee_handle,
    )


def flag_activity(
    reporter: Actor,
    target_handle: str,
    post_uris: tuple[str, ...],
    comment: str,
    published: float,
) -> Activity:
    """Build a ``Flag`` (report) activity against a remote user."""
    return Activity(
        activity_id=_next_id(reporter.domain),
        activity_type=ActivityType.FLAG,
        actor=reporter,
        origin_domain=reporter.domain,
        published=published,
        obj={
            "target": target_handle,
            "posts": list(post_uris),
            "comment": comment,
        },
    )
