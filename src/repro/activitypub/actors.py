"""ActivityPub actors (the protocol-level view of an account)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fediverse.identifiers import make_actor_uri, make_handle, parse_handle
from repro.fediverse.user import User


@dataclass(frozen=True)
class Actor:
    """The ActivityPub actor advertised by a user account.

    ``created_at`` and ``follower_count`` carry the account metadata that
    anti-spam policies (e.g. ``AntiLinkSpamPolicy``) inspect when deciding
    whether an author looks like a freshly created spam bot.
    """

    username: str
    domain: str
    actor_type: str = "Person"
    display_name: str = ""
    bot: bool = False
    avatar_url: str | None = None
    banner_url: str | None = None
    created_at: float = 0.0
    follower_count: int = 0

    @property
    def handle(self) -> str:
        """Return the ``username@domain`` handle of the actor."""
        return make_handle(self.username, self.domain)

    @property
    def uri(self) -> str:
        """Return the canonical actor URI."""
        return make_actor_uri(self.domain, self.username)

    @property
    def inbox(self) -> str:
        """Return the actor inbox endpoint."""
        return f"{self.uri}/inbox"

    @property
    def outbox(self) -> str:
        """Return the actor outbox endpoint."""
        return f"{self.uri}/outbox"

    @classmethod
    def from_user(cls, user: User) -> "Actor":
        """Build the actor advertised by a :class:`~repro.fediverse.user.User`."""
        return cls(
            username=user.username,
            domain=user.domain,
            actor_type="Service" if user.bot else "Person",
            display_name=user.display_name,
            bot=user.bot,
            avatar_url=user.avatar_url,
            banner_url=user.banner_url,
            created_at=user.created_at,
            follower_count=user.follower_count,
        )

    @classmethod
    def from_handle(cls, handle: str, bot: bool = False) -> "Actor":
        """Build a minimal actor from a bare handle."""
        username, domain = parse_handle(handle)
        return cls(username=username, domain=domain, bot=bot)
