"""Visibility- and recipient-related policies.

* ``RejectNonPublic`` — control whether followers-only / direct posts are
  accepted at all (3 instances in Table 3).
* ``MentionPolicy`` — drop posts mentioning configured users (6 instances).
* ``ActivityExpirationPolicy`` — set a default expiration on posts made by
  local users (11 instances).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import Visibility
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)

#: Default expiration applied by ActivityExpirationPolicy (days), as in Pleroma.
DEFAULT_EXPIRATION_DAYS = 365


class RejectNonPublic(MRFPolicy):
    """Whether to allow followers-only / direct posts."""

    name = "RejectNonPublic"

    def __init__(self, allow_followers_only: bool = False, allow_direct: bool = False) -> None:
        self._allow_followers_only = bool(allow_followers_only)
        self._allow_direct = bool(allow_direct)
        self.config_version = 0

    # The allow flags are exposed as version-bumping properties so compiled
    # pipelines recompile when a flag is flipped in place (the precheck
    # below bakes the disallowed visibilities into the fast-path table).
    @property
    def allow_followers_only(self) -> bool:
        """Whether followers-only posts are accepted."""
        return self._allow_followers_only

    @allow_followers_only.setter
    def allow_followers_only(self, value: bool) -> None:
        self._allow_followers_only = bool(value)
        self._bump_config_version()

    @property
    def allow_direct(self) -> bool:
        """Whether direct posts are accepted."""
        return self._allow_direct

    @allow_direct.setter
    def allow_direct(self, value: bool) -> None:
        self._allow_direct = bool(value)
        self._bump_config_version()

    def config(self) -> dict[str, Any]:
        """Return which non-public visibilities are allowed."""
        return {
            "allow_followersonly": self.allow_followers_only,
            "allow_direct": self.allow_direct,
        }

    def plan(self) -> DecisionPlan:
        """The policy can only act on posts of a disallowed visibility.

        A content-shaped trigger: public/unlisted posts (the overwhelming
        majority of federated traffic) provably pass untouched, so compiled
        pipelines keep them on the fast path.  With both visibility classes
        allowed the plan is trigger-less and the policy is dropped from
        the walk entirely.
        """
        disallowed = set()
        if not self._allow_followers_only:
            disallowed.add(Visibility.FOLLOWERS_ONLY)
        if not self._allow_direct:
            disallowed.add(Visibility.DIRECT)
        return DecisionPlan(
            triggers=PolicyTriggers(post_visibilities=frozenset(disallowed))
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject non-public posts unless their visibility class is allowed."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        if post.visibility is Visibility.FOLLOWERS_ONLY and not self.allow_followers_only:
            return self.reject(
                activity,
                action="reject",
                reason="followers-only posts are not accepted",
            )
        if post.visibility is Visibility.DIRECT and not self.allow_direct:
            return self.reject(
                activity,
                action="reject",
                reason="direct posts are not accepted",
            )
        return self.accept(activity)


class MentionPolicy(MRFPolicy):
    """Drop posts mentioning configurable users."""

    name = "MentionPolicy"

    def __init__(self, actors: Iterable[str] = ()) -> None:
        self.blocked_mentions = {a.lower().lstrip("@") for a in actors}

    def config(self) -> dict[str, Any]:
        """Return the handles whose mention causes a drop."""
        return {"actors": sorted(self.blocked_mentions)}

    def plan(self) -> DecisionPlan:
        """Always run: ``blocked_mentions`` is a public mutable set.

        A narrower trigger (the blocked handle set) would be permanently
        baked into compiled pipelines — there is no version-bumping
        mutator, so a later ``policy.blocked_mentions.add(...)`` would be
        silently ignored.  The plan therefore declares ``match_all``,
        which is always sound.
        """
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject posts that mention any blocked handle."""
        post = activity.post
        if post is None or not self.blocked_mentions:
            return self.accept(activity)
        mentioned = {m.lower() for m in post.mentions}
        hits = mentioned & self.blocked_mentions
        if hits:
            return self.reject(
                activity,
                action="reject",
                reason=f"mentions blocked users: {', '.join(sorted(hits))}",
            )
        return self.accept(activity)


class ActivityExpirationPolicy(MRFPolicy):
    """Set a default expiration on all posts made by users of the local instance."""

    name = "ActivityExpirationPolicy"

    def __init__(self, days: int = DEFAULT_EXPIRATION_DAYS) -> None:
        if days <= 0:
            raise ValueError("expiration must be a positive number of days")
        self.days = days

    def config(self) -> dict[str, Any]:
        """Return the configured expiration in days."""
        return {"days": self.days}

    def plan(self) -> DecisionPlan:
        """The policy only stamps locally-originated posts."""
        return DecisionPlan(
            triggers=PolicyTriggers(local_origin_only=True, match_all=True)
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Stamp local posts with an expiration timestamp."""
        post = activity.post
        if post is None or activity.origin_domain != ctx.local_domain:
            return self.accept(activity)
        if post.expires_at is not None:
            return self.accept(activity)
        expires_at = post.created_at + self.days * SECONDS_PER_DAY
        stamped = post.with_changes(expires_at=expires_at)
        return self.accept(
            activity.with_post(stamped),
            action="set_expiration",
            reason=f"expires after {self.days} days",
            modified=True,
        )
