"""``TagPolicy``: per-user moderation driven by admin-applied tags.

The TagPolicy is the second most popular policy in the paper (33% of
instances).  Unlike SimplePolicy it acts on individual *users* rather than
whole instances, which is exactly the granularity the paper's Section 7
recommends to avoid collateral damage.  Administrators tag remote (or local)
accounts and the policy rewrites or restricts activities from tagged
accounts accordingly.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.post import Visibility
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)


class TagAction:
    """The tags understood by the policy (mirroring Pleroma's ``mrf_tag:*``)."""

    FORCE_NSFW = "mrf_tag:media-force-nsfw"
    STRIP_MEDIA = "mrf_tag:media-strip"
    FORCE_UNLISTED = "mrf_tag:force-unlisted"
    SANDBOX = "mrf_tag:sandbox"
    DISABLE_REMOTE_SUBSCRIPTION = "mrf_tag:disable-remote-subscription"
    DISABLE_ANY_SUBSCRIPTION = "mrf_tag:disable-any-subscription"

    ALL = (
        FORCE_NSFW,
        STRIP_MEDIA,
        FORCE_UNLISTED,
        SANDBOX,
        DISABLE_REMOTE_SUBSCRIPTION,
        DISABLE_ANY_SUBSCRIPTION,
    )


class TagPolicy(MRFPolicy):
    """Apply policies to individual users based on tags."""

    name = "TagPolicy"

    def __init__(self, tagged_users: dict[str, Iterable[str]] | None = None) -> None:
        # handle -> set of tags
        self._tags: dict[str, set[str]] = {}
        for handle, tags in (tagged_users or {}).items():
            for tag in tags:
                self.tag_user(handle, tag)

    # ------------------------------------------------------------------ #
    # Tag management
    # ------------------------------------------------------------------ #
    def tag_user(self, handle: str, tag: str) -> None:
        """Attach ``tag`` to the account identified by ``handle``."""
        if tag not in TagAction.ALL:
            raise ValueError(f"unknown tag: {tag}")
        self._tags.setdefault(handle.lower().lstrip("@"), set()).add(tag)
        self._bump_config_version()

    def untag_user(self, handle: str, tag: str) -> bool:
        """Remove ``tag`` from ``handle``; return ``True`` when it was set."""
        handle = handle.lower().lstrip("@")
        if handle in self._tags and tag in self._tags[handle]:
            self._tags[handle].discard(tag)
            if not self._tags[handle]:
                del self._tags[handle]
            self._bump_config_version()
            return True
        return False

    def tags_for(self, handle: str) -> set[str]:
        """Return the tags applied to ``handle``."""
        return set(self._tags.get(handle.lower().lstrip("@"), set()))

    def tagged_users(self) -> dict[str, set[str]]:
        """Return the full handle -> tags mapping."""
        return {handle: set(tags) for handle, tags in self._tags.items()}

    def config(self) -> dict[str, Any]:
        """Return the policy configuration."""
        return {handle: sorted(tags) for handle, tags in sorted(self._tags.items())}

    def plan(self) -> DecisionPlan:
        """The policy can only act on activities from tagged accounts."""
        return DecisionPlan(triggers=PolicyTriggers(handles=frozenset(self._tags)))

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Rewrite or restrict activities from tagged accounts."""
        tags = self.tags_for(activity.actor.handle)
        if not tags:
            return self.accept(activity)

        if activity.is_follow:
            return self._filter_follow(activity, tags, ctx)

        post = activity.post
        if post is None:
            return self.accept(activity)

        current = activity
        applied: list[str] = []

        if TagAction.STRIP_MEDIA in tags and post.has_media:
            post = post.with_changes(attachments=())
            current = current.with_post(post)
            applied.append("strip_media")
        if TagAction.FORCE_NSFW in tags and not post.sensitive:
            post = post.with_changes(sensitive=True)
            current = current.with_post(post)
            applied.append("force_nsfw")
        if TagAction.FORCE_UNLISTED in tags and post.is_public:
            post = post.with_changes(visibility=Visibility.UNLISTED)
            current = current.with_post(post)
            applied.append("force_unlisted")
        if TagAction.SANDBOX in tags and post.visibility in (
            Visibility.PUBLIC,
            Visibility.UNLISTED,
        ):
            post = post.with_changes(visibility=Visibility.FOLLOWERS_ONLY)
            current = current.with_post(post)
            applied.append("sandbox")

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1],
            reason="+".join(applied),
            modified=True,
        )

    def _filter_follow(
        self, activity: Activity, tags: set[str], ctx: MRFContext
    ) -> MRFDecision:
        """Reject follow requests from accounts whose subscriptions are disabled."""
        if TagAction.DISABLE_ANY_SUBSCRIPTION in tags:
            return self.reject(
                activity,
                action="disable_any_subscription",
                reason="account may not be followed",
            )
        is_remote = activity.origin_domain != ctx.local_domain
        if TagAction.DISABLE_REMOTE_SUBSCRIPTION in tags and is_remote:
            return self.reject(
                activity,
                action="disable_remote_subscription",
                reason="account may not be followed from remote instances",
            )
        return self.accept(activity)
