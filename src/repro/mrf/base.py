"""Base classes shared by all MRF policies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.activitypub.activities import Activity

#: Action name used when a policy lets an activity through untouched.
PASS_ACTION = "pass"


class Verdict(str, Enum):
    """The final word a policy has on an activity."""

    ACCEPT = "accept"
    REJECT = "reject"


@dataclass(frozen=True)
class MRFContext:
    """Everything a policy may need to know about the receiving side."""

    local_domain: str
    now: float
    local_instance: Any = None


@dataclass
class MRFDecision:
    """The outcome of filtering one activity through one policy (or pipeline)."""

    verdict: Verdict
    activity: Activity
    policy: str = ""
    action: str = PASS_ACTION
    reason: str = ""
    modified: bool = False

    @property
    def accepted(self) -> bool:
        """Return ``True`` when the activity may be applied."""
        return self.verdict is Verdict.ACCEPT

    @property
    def rejected(self) -> bool:
        """Return ``True`` when the activity must be dropped."""
        return self.verdict is Verdict.REJECT


@dataclass(frozen=True)
class ModerationEvent:
    """A record of a policy acting on an activity (reject or rewrite)."""

    timestamp: float
    moderating_domain: str
    origin_domain: str
    policy: str
    action: str
    activity_type: str
    activity_id: str
    accepted: bool
    reason: str = ""


class MRFPolicy(ABC):
    """Base class for all MRF policies.

    Subclasses implement :meth:`filter` and must set :attr:`name` to the
    policy name used in Pleroma configuration (e.g. ``SimplePolicy``).
    """

    name: str = "MRFPolicy"

    @abstractmethod
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Filter one activity, returning an :class:`MRFDecision`."""

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def accept(
        self,
        activity: Activity,
        action: str = PASS_ACTION,
        reason: str = "",
        modified: bool = False,
    ) -> MRFDecision:
        """Build an accepting decision."""
        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=activity,
            policy=self.name,
            action=action,
            reason=reason,
            modified=modified,
        )

    def reject(self, activity: Activity, action: str = "reject", reason: str = "") -> MRFDecision:
        """Build a rejecting decision."""
        return MRFDecision(
            verdict=Verdict.REJECT,
            activity=activity,
            policy=self.name,
            action=action,
            reason=reason,
        )

    def config(self) -> dict[str, Any]:
        """Return the policy configuration (overridden by subclasses)."""
        return {}

    def describe(self) -> dict[str, Any]:
        """Return a serialisable description of the policy."""
        return {"name": self.name, "config": self.config()}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class PolicyStats:
    """Per-policy counters, useful in tests and benchmarks."""

    seen: int = 0
    rejected: int = 0
    rewritten: int = 0
    by_action: dict[str, int] = field(default_factory=dict)

    def record(self, decision: MRFDecision) -> None:
        """Update counters from a decision."""
        self.seen += 1
        if decision.rejected:
            self.rejected += 1
        elif decision.action != PASS_ACTION:
            self.rewritten += 1
        if decision.action != PASS_ACTION:
            self.by_action[decision.action] = self.by_action.get(decision.action, 0) + 1
