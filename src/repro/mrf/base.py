"""Base classes shared by all MRF policies: decisions, events and the
declarative :class:`DecisionPlan` protocol every policy speaks."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.post import Post
from repro.mrf.shared import mention_count_of

#: Action name used when a policy lets an activity through untouched.
PASS_ACTION = "pass"


class Verdict(str, Enum):
    """The final word a policy has on an activity."""

    ACCEPT = "accept"
    REJECT = "reject"


@dataclass(frozen=True)
class MRFContext:
    """Everything a policy may need to know about the receiving side."""

    local_domain: str
    now: float
    local_instance: Any = None


@dataclass(slots=True)
class MRFDecision:
    """The outcome of filtering one activity through one policy (or pipeline)."""

    verdict: Verdict
    activity: Activity
    policy: str = ""
    action: str = PASS_ACTION
    reason: str = ""
    modified: bool = False

    @property
    def accepted(self) -> bool:
        """Return ``True`` when the activity may be applied."""
        return self.verdict is Verdict.ACCEPT

    @property
    def rejected(self) -> bool:
        """Return ``True`` when the activity must be dropped."""
        return self.verdict is Verdict.REJECT


@dataclass(frozen=True)
class ContentTrigger:
    """A content-shaped trigger backed by interned hit columns.

    ``columns`` is a shared :class:`repro.mrf.shared.TriggerColumns` store:
    each distinct post is scanned once (token-anchored corpus columns or an
    unanchored literal scan) and every later evaluation is a cache hit.
    ``tag_terms`` covers explicit ``post.tags`` entries the content scan
    cannot see (the HashtagPolicy's out-of-band tags).
    """

    columns: Any
    tag_terms: frozenset[str] | None = None

    def fires(self, post: Post) -> bool:
        """Return ``True`` when the trigger could fire for ``post``."""
        if self.columns.hit(post):
            return True
        tags = post.tags
        if tags and self.tag_terms:
            terms = self.tag_terms
            for tag in tags:
                if tag.lower() in terms:
                    return True
        return False


@dataclass(frozen=True)
class PolicyTriggers:
    """A conservative, cheap description of when a policy *could* act —
    the gates-and-triggers half of a :class:`DecisionPlan`.

    The pipeline merges these into a fast-path table (see
    :meth:`repro.mrf.pipeline.MRFPipeline.filter`): an activity that no
    enabled policy could possibly touch skips the policy loop entirely, and
    a policy whose triggers rule an activity out is skipped within the
    loop.  Skipping is only sound when it is a strict no-op, so triggers
    must be *conservative*: they may claim a policy could act when it would
    not, never the reverse.  A policy whose pass-through branch has side
    effects (counters, caches, logging) must declare triggers that cover
    every side-effectful branch (``match_all`` in the worst case).

    Semantics of :meth:`may_touch`: the gate fields (``activity_types``,
    ``local_origin_only``) are ANDed first; the trigger fields (all the
    rest) are then ORed.  An all-default value means the policy never acts
    and the pipeline drops it from the walk entirely.
    """

    #: Exact (already normalised) origin domains the policy might act on.
    domains: frozenset[str] = frozenset()
    #: Wildcard suffixes (a ``*.example`` pattern is stored as ``example``).
    suffixes: tuple[str, ...] = ()
    #: Lower-cased actor handles the policy might act on.
    handles: frozenset[str] = frozenset()
    #: Activity types the policy can act on (``None`` = any type).
    activity_types: frozenset[ActivityType] | None = None
    #: The policy acts only on activities carrying a post older than this.
    max_post_age: float | None = None
    #: The policy acts only on activities carrying a post of one of these
    #: visibilities (content-shaped trigger, e.g. RejectNonPublic).
    post_visibilities: frozenset = frozenset()
    #: The policy acts only on posts mentioning at least this many users
    #: (content-shaped trigger, e.g. HellthreadPolicy).
    min_mentions: int | None = None
    #: The policy acts only on posts whose text hits an interned column set
    #: (content-shaped trigger, e.g. Keyword/Hashtag policies).
    content: ContentTrigger | None = None
    #: The policy acts only on posts carrying media attachments.
    media_posts: bool = False
    #: The policy acts only on posts authored by bot accounts.
    bot_posts: bool = False
    #: The policy acts only on replies that carry a subject line.
    reply_with_subject: bool = False
    #: The policy acts only on activities originating locally.
    local_origin_only: bool = False
    #: The policy might act on anything that passes the gates above.
    match_all: bool = False

    def may_touch(self, activity: Activity, now: float, local_domain: str) -> bool:
        """Return ``True`` when the policy could act on ``activity``."""
        if self.local_origin_only and activity.origin_domain != local_domain:
            return False
        if (
            self.activity_types is not None
            and activity.activity_type not in self.activity_types
        ):
            return False
        if self.match_all:
            return True
        origin = activity.origin_domain
        if origin in self.domains:
            return True
        for suffix in self.suffixes:
            if origin == suffix or origin.endswith("." + suffix):
                return True
        if self.handles and activity.actor.handle.lower() in self.handles:
            return True
        obj = activity.obj
        if obj.__class__ is Post:
            if (
                self.max_post_age is not None
                and now - obj.created_at > self.max_post_age
            ):
                return True
            if self.post_visibilities and obj.visibility in self.post_visibilities:
                return True
            if (
                self.min_mentions is not None
                and mention_count_of(obj) >= self.min_mentions
            ):
                return True
            if self.media_posts and obj.attachments:
                return True
            if self.bot_posts and (obj.is_bot or activity.actor.bot):
                return True
            if (
                self.reply_with_subject
                and obj.in_reply_to is not None
                and obj.subject
            ):
                return True
            if self.content is not None and self.content.fires(obj):
                return True
        return False

    def origin_fires(self, origin: str) -> bool:
        """The origin-dependent half of the trigger OR."""
        if self.match_all:
            return True
        if origin in self.domains:
            return True
        for suffix in self.suffixes:
            if origin == suffix or origin.endswith("." + suffix):
                return True
        return False

    def may_touch_postless(
        self, origin: str, activity_type: "ActivityType", local_domain: str
    ) -> bool:
        """Could the policy touch a post-less ``activity_type`` from ``origin``?

        The per-type batch-program builder calls this for batches whose
        payloads are not posts (Announce, Like, Delete, Follow, Flag…).
        ``False`` is a proof: every post-shaped trigger needs a
        :class:`~repro.fediverse.post.Post` payload, so only the gates, the
        origin triggers and the actor-handle triggers can fire — if none
        can, the policy is provably silent on the whole batch.

        ``origin != local_domain`` is assumed (deliveries never originate
        at their target), so ``local_origin_only`` policies are dead here.
        """
        if self.local_origin_only and origin != local_domain:
            return False
        if self.activity_types is not None and activity_type not in self.activity_types:
            return False
        if self.origin_fires(origin):
            return True
        return bool(self.handles)

    def could_act_for(self, origin: str) -> bool:
        """Return ``True`` when some activity from ``origin`` could be touched.

        ``False`` is a proof: no activity whose (immutable) origin domain is
        ``origin`` can ever satisfy the trigger OR, so the policy is dead
        for a whole single-origin batch.  Gates are ignored — they can only
        narrow further.
        """
        if self.origin_fires(origin):
            return True
        return bool(
            self.handles
            or self.max_post_age is not None
            or self.post_visibilities
            or self.min_mentions is not None
            or self.content is not None
            or self.media_posts
            or self.bot_posts
            or self.reply_with_subject
        )

    @property
    def never_fires(self) -> bool:
        """``True`` when no activity can ever satisfy the trigger OR."""
        return not (
            self.match_all
            or self.domains
            or self.suffixes
            or self.handles
            or self.max_post_age is not None
            or self.post_visibilities
            or self.min_mentions is not None
            or self.content is not None
            or self.media_posts
            or self.bot_posts
            or self.reply_with_subject
        )


@dataclass(frozen=True)
class SliceOutcome:
    """What a content-independent rewrite does to one slice of a batch.

    Every triggered activity whose post falls into the slice receives the
    *same* decision metadata — one ``(action, reason)`` shared by the whole
    slice — and, for rewrite outcomes, the same transformation applied
    through the shared rewrite ledger (so one rewritten post serves every
    receiver it federates to).
    """

    action: str
    reason: str
    #: ``True`` → the slice is rejected outright (metadata above shared).
    reject: bool = False
    #: Rewrite ``(activity, post) -> rewritten activity`` for accept slices.
    rewrite: Callable[[Activity, Post], Activity] | None = None
    #: The post-level half of ``rewrite`` (``post -> rewritten post``),
    #: used by report-free delivery where the activity wrapper is
    #: unobservable and only the stored post matters.
    rewrite_post: Callable[[Post], Post] | None = None
    #: The visibility the rewrite can move a post *to*, when it changes
    #: visibility at all (``None`` otherwise).  The pipeline uses this to
    #: detect residual triggers that could fire on the rewritten post
    #: though they did not on the original, and falls back to the general
    #: walk for such batches.  Every rewrite that changes visibility MUST
    #: declare it here.
    produces_visibility: Any = None
    #: Scratch cache for the pipeline's lean batch decisions (one shared
    #: decision object per distinct post, across every receiving pipeline).
    lean_cache: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SharedRewrite:
    """Declaration that a policy's rewrite is content-independent per slice.

    The contract (the strongest a plan can make): for *any* activity
    carrying a :class:`~repro.fediverse.post.Post` older than
    ``age_threshold``, the policy's :meth:`~MRFPolicy.filter` result equals
    ``outcomes[slice_of(post)]`` applied to the activity — and for every
    other activity the policy provably passes it through untouched.  A
    missing slice key means that slice is untouched too.  This must be
    *exact*, not conservative: the pipeline applies the outcome without
    running the policy at all, sharing one decision across the batch.
    """

    #: The (exact) age selector: acts iff ``now - post.created_at > this``.
    age_threshold: float
    #: Discrete slice classifier for triggered posts.
    slice_of: Callable[[Post], Any]
    #: Slice key -> outcome; a missing key means the slice is untouched.
    outcomes: Mapping[Any, SliceOutcome]


@dataclass(frozen=True)
class DecisionPlan:
    """The declarative decision plan every MRF policy exposes.

    A plan tells the compiled pipeline three things:

    * ``triggers`` — the conservative gates and triggers selecting the
      activities the policy could act on (anything else is skipped);
    * ``origin_pure`` — when not ``None``, a hook ``(origin, local_domain)
      -> (action, reason) | None`` returning the reject the policy applies
      to *every* activity from that origin before any other behaviour (the
      shareable whole-batch reject), or ``None`` when no such reject
      applies;
    * ``shared_rewrite`` — when not ``None``, the declaration that the
      policy's rewrite is content-independent per batch slice, letting the
      pipeline apply it without running the policy (see
      :class:`SharedRewrite`);
    * ``origin_stages`` — the origin-conditional variant of
      ``shared_rewrite``: a hook ``(origin, local_domain) ->
      SharedRewrite | None`` describing what the policy does to activities
      from that origin *once the origin-pure hook stayed silent*.  A
      returned rewrite with the same exactness contract as
      :class:`SharedRewrite` lets the batch stay on the staged fast path
      (empty ``outcomes`` = the policy provably never acts on the origin);
      ``None`` means the policy acts in ways no stage can express and the
      batch takes the general walk.

    See the :mod:`repro.mrf` package docstring for the authoring guide
    (gates vs triggers, when sharing is sound, the side-effect rule).
    """

    triggers: PolicyTriggers
    origin_pure: Callable[[str, str], tuple[str, str] | None] | None = None
    shared_rewrite: SharedRewrite | None = None
    origin_stages: Callable[[str, str], SharedRewrite | None] | None = None


@dataclass(frozen=True)
class ModerationEvent:
    """A record of a policy acting on an activity (reject or rewrite)."""

    timestamp: float
    moderating_domain: str
    origin_domain: str
    policy: str
    action: str
    activity_type: str
    activity_id: str
    accepted: bool
    reason: str = ""


class MRFPolicy(ABC):
    """Base class for all MRF policies.

    Subclasses implement :meth:`filter` and must set :attr:`name` to the
    policy name used in Pleroma configuration (e.g. ``SimplePolicy``).
    """

    name: str = "MRFPolicy"

    #: Bumped by mutating configuration methods so pipelines know when to
    #: recompile their fast-path tables (see :meth:`plan`).
    config_version: int = 0

    @abstractmethod
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Filter one activity, returning an :class:`MRFDecision`."""

    def plan(self) -> DecisionPlan | None:
        """Return the policy's decision plan, or ``None`` when it is opaque.

        ``None`` (the default, for third-party subclasses that predate the
        plan API) means the pipeline must always run the policy and can
        never share its decisions.  Every shipped policy returns a
        :class:`DecisionPlan` snapshot of its configuration and bumps
        :attr:`config_version` whenever that configuration mutates, so
        compiled pipelines invalidate.  A policy that must run on every
        activity (stateful counters, caches) still declares a plan — one
        whose triggers ``match_all`` — rather than staying opaque.
        """
        return None

    def _bump_config_version(self) -> None:
        """Invalidate compiled plans after a configuration change."""
        self.config_version = self.config_version + 1

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def accept(
        self,
        activity: Activity,
        action: str = PASS_ACTION,
        reason: str = "",
        modified: bool = False,
    ) -> MRFDecision:
        """Build an accepting decision."""
        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=activity,
            policy=self.name,
            action=action,
            reason=reason,
            modified=modified,
        )

    def reject(self, activity: Activity, action: str = "reject", reason: str = "") -> MRFDecision:
        """Build a rejecting decision."""
        return MRFDecision(
            verdict=Verdict.REJECT,
            activity=activity,
            policy=self.name,
            action=action,
            reason=reason,
        )

    def config(self) -> dict[str, Any]:
        """Return the policy configuration (overridden by subclasses)."""
        return {}

    def describe(self) -> dict[str, Any]:
        """Return a serialisable description of the policy."""
        return {"name": self.name, "config": self.config()}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class PolicyStats:
    """Per-policy counters, useful in tests and benchmarks."""

    seen: int = 0
    rejected: int = 0
    rewritten: int = 0
    by_action: dict[str, int] = field(default_factory=dict)

    def record(self, decision: MRFDecision) -> None:
        """Update counters from a decision."""
        self.seen += 1
        if decision.rejected:
            self.rejected += 1
        elif decision.action != PASS_ACTION:
            self.rewritten += 1
        if decision.action != PASS_ACTION:
            self.by_action[decision.action] = self.by_action.get(decision.action, 0) + 1
