"""Base classes shared by all MRF policies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.post import Post

#: Action name used when a policy lets an activity through untouched.
PASS_ACTION = "pass"


class Verdict(str, Enum):
    """The final word a policy has on an activity."""

    ACCEPT = "accept"
    REJECT = "reject"


@dataclass(frozen=True)
class MRFContext:
    """Everything a policy may need to know about the receiving side."""

    local_domain: str
    now: float
    local_instance: Any = None


@dataclass(slots=True)
class MRFDecision:
    """The outcome of filtering one activity through one policy (or pipeline)."""

    verdict: Verdict
    activity: Activity
    policy: str = ""
    action: str = PASS_ACTION
    reason: str = ""
    modified: bool = False

    @property
    def accepted(self) -> bool:
        """Return ``True`` when the activity may be applied."""
        return self.verdict is Verdict.ACCEPT

    @property
    def rejected(self) -> bool:
        """Return ``True`` when the activity must be dropped."""
        return self.verdict is Verdict.REJECT


@dataclass(frozen=True)
class PolicyPrecheck:
    """A conservative, cheap description of when a policy *could* act.

    The pipeline merges these into a fast-path table (see
    :meth:`repro.mrf.pipeline.MRFPipeline.filter`): an activity that no
    enabled policy could possibly touch skips the policy loop entirely, and
    a policy whose precheck rules an activity out is skipped within the
    loop.  Skipping is only sound when it is a strict no-op, so prechecks
    must be *conservative*: they may claim a policy could act when it would
    not, never the reverse, and a policy whose pass-through branch has side
    effects (counters, caches, logging) must not expose a precheck at all.

    Semantics of :meth:`may_touch`: the gate fields (``activity_types``,
    ``local_origin_only``) are ANDed first; the trigger fields (``domains``,
    ``suffixes``, ``handles``, ``max_post_age``, ``post_visibilities``,
    ``match_all``) are then ORed.  An all-default precheck means the policy
    never acts.
    """

    #: Exact (already normalised) origin domains the policy might act on.
    domains: frozenset[str] = frozenset()
    #: Wildcard suffixes (a ``*.example`` pattern is stored as ``example``).
    suffixes: tuple[str, ...] = ()
    #: Lower-cased actor handles the policy might act on.
    handles: frozenset[str] = frozenset()
    #: Activity types the policy can act on (``None`` = any type).
    activity_types: frozenset[ActivityType] | None = None
    #: The policy acts only on activities carrying a post older than this.
    max_post_age: float | None = None
    #: The policy acts only on activities carrying a post of one of these
    #: visibilities (content-shaped trigger, e.g. RejectNonPublic).
    post_visibilities: frozenset = frozenset()
    #: The policy acts only on activities originating locally.
    local_origin_only: bool = False
    #: The policy might act on anything that passes the gates above.
    match_all: bool = False

    def may_touch(self, activity: Activity, now: float, local_domain: str) -> bool:
        """Return ``True`` when the policy could act on ``activity``."""
        if self.local_origin_only and activity.origin_domain != local_domain:
            return False
        if (
            self.activity_types is not None
            and activity.activity_type not in self.activity_types
        ):
            return False
        if self.match_all:
            return True
        origin = activity.origin_domain
        if origin in self.domains:
            return True
        for suffix in self.suffixes:
            if origin == suffix or origin.endswith("." + suffix):
                return True
        if self.handles and activity.actor.handle.lower() in self.handles:
            return True
        obj = activity.obj
        if obj.__class__ is Post:
            if (
                self.max_post_age is not None
                and now - obj.created_at > self.max_post_age
            ):
                return True
            if self.post_visibilities and obj.visibility in self.post_visibilities:
                return True
        return False


@dataclass(frozen=True)
class ModerationEvent:
    """A record of a policy acting on an activity (reject or rewrite)."""

    timestamp: float
    moderating_domain: str
    origin_domain: str
    policy: str
    action: str
    activity_type: str
    activity_id: str
    accepted: bool
    reason: str = ""


class MRFPolicy(ABC):
    """Base class for all MRF policies.

    Subclasses implement :meth:`filter` and must set :attr:`name` to the
    policy name used in Pleroma configuration (e.g. ``SimplePolicy``).
    """

    name: str = "MRFPolicy"

    #: Bumped by mutating configuration methods so pipelines know when to
    #: recompile their fast-path tables (see :meth:`precheck`).
    config_version: int = 0

    @abstractmethod
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Filter one activity, returning an :class:`MRFDecision`."""

    def precheck(self) -> PolicyPrecheck | None:
        """Return a conservative precheck, or ``None`` when the policy is opaque.

        ``None`` (the default) means the pipeline must always run the
        policy.  Subclasses whose pass-through branch is a strict no-op may
        return a :class:`PolicyPrecheck` snapshot of their configuration;
        they must bump :attr:`config_version` whenever that configuration
        mutates, so compiled pipelines invalidate.
        """
        return None

    def _bump_config_version(self) -> None:
        """Invalidate compiled prechecks after a configuration change."""
        self.config_version = self.config_version + 1

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def accept(
        self,
        activity: Activity,
        action: str = PASS_ACTION,
        reason: str = "",
        modified: bool = False,
    ) -> MRFDecision:
        """Build an accepting decision."""
        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=activity,
            policy=self.name,
            action=action,
            reason=reason,
            modified=modified,
        )

    def reject(self, activity: Activity, action: str = "reject", reason: str = "") -> MRFDecision:
        """Build a rejecting decision."""
        return MRFDecision(
            verdict=Verdict.REJECT,
            activity=activity,
            policy=self.name,
            action=action,
            reason=reason,
        )

    def config(self) -> dict[str, Any]:
        """Return the policy configuration (overridden by subclasses)."""
        return {}

    def describe(self) -> dict[str, Any]:
        """Return a serialisable description of the policy."""
        return {"name": self.name, "config": self.config()}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class PolicyStats:
    """Per-policy counters, useful in tests and benchmarks."""

    seen: int = 0
    rejected: int = 0
    rewritten: int = 0
    by_action: dict[str, int] = field(default_factory=dict)

    def record(self, decision: MRFDecision) -> None:
        """Update counters from a decision."""
        self.seen += 1
        if decision.rejected:
            self.rejected += 1
        elif decision.action != PASS_ACTION:
            self.rewritten += 1
        if decision.action != PASS_ACTION:
            self.by_action[decision.action] = self.by_action.get(decision.action, 0) + 1
