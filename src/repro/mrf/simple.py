"""Pleroma's ``SimplePolicy``: per-instance moderation actions.

The SimplePolicy is the work-horse of federation moderation and the policy
the paper analyses in most depth (Figures 2 and 3).  Administrators attach
*actions* to lists of target instance domains; incoming activities whose
origin matches a target are then rejected, stripped of media, forced NSFW,
and so on.  The ten actions modelled here are exactly the ten the paper
reports for Figures 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Iterable

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.identifiers import domain_matches, normalise_domain
from repro.fediverse.post import Post, Visibility
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
    SharedRewrite,
    SliceOutcome,
)
from repro.mrf.shared import ledger_room, on_clear, rewrite_ledger


class SimplePolicyAction(str, Enum):
    """The actions the SimplePolicy can apply to matching instances.

    The values follow the names used in Pleroma's ``mrf_simple``
    configuration block (and hence in the dataset the paper collects).
    """

    REJECT = "reject"
    FEDERATED_TIMELINE_REMOVAL = "federated_timeline_removal"
    ACCEPT = "accept"
    MEDIA_REMOVAL = "media_removal"
    MEDIA_NSFW = "media_nsfw"
    BANNER_REMOVAL = "banner_removal"
    AVATAR_REMOVAL = "avatar_removal"
    REJECT_DELETES = "reject_deletes"
    REPORT_REMOVAL = "report_removal"
    FOLLOWERS_ONLY = "followers_only"

    @classmethod
    def from_string(cls, value: str) -> "SimplePolicyAction":
        """Parse an action name, accepting a few common aliases."""
        aliases = {
            "fed_timeline_rem": cls.FEDERATED_TIMELINE_REMOVAL,
            "nsfw": cls.MEDIA_NSFW,
        }
        cleaned = value.strip().lower()
        if cleaned in aliases:
            return aliases[cleaned]
        return cls(cleaned)


#: Actions that rewrite (rather than reject) the carried post.
REWRITE_ACTIONS = frozenset(
    {
        SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL,
        SimplePolicyAction.MEDIA_REMOVAL,
        SimplePolicyAction.MEDIA_NSFW,
        SimplePolicyAction.BANNER_REMOVAL,
        SimplePolicyAction.AVATAR_REMOVAL,
        SimplePolicyAction.FOLLOWERS_ONLY,
    }
)

#: The rewrite actions whose effect is content-independent per post slice —
#: stageable through the batched fast path — in the order
#: :meth:`SimplePolicy.filter` applies them.
_STAGEABLE_ACTIONS = (
    SimplePolicyAction.MEDIA_REMOVAL,
    SimplePolicyAction.MEDIA_NSFW,
    SimplePolicyAction.FOLLOWERS_ONLY,
    SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL,
)

#: Actions that keep an origin off the staged fast path: avatar/banner
#: removal touch the actor of *any* activity (post-carrying or not), and
#: the delete/report rejects depend on the activity type.
_UNSTAGEABLE_ACTIONS = (
    SimplePolicyAction.AVATAR_REMOVAL,
    SimplePolicyAction.BANNER_REMOVAL,
    SimplePolicyAction.REJECT_DELETES,
    SimplePolicyAction.REPORT_REMOVAL,
)


@dataclass(frozen=True)
class SimplePolicyMatch:
    """A record of one action matching one activity (used for introspection)."""

    action: SimplePolicyAction
    target_domain: str
    pattern: str


class SimplePolicy(MRFPolicy):
    """Restrict the visibility of activities from certain instances.

    Each action holds a set of domain patterns (exact domains or
    ``*.domain`` wildcards).  The policy applies every matching action in a
    fixed order, with ``reject`` and the accept-list check short-circuiting.
    """

    name = "SimplePolicy"

    def __init__(
        self,
        reject: Iterable[str] = (),
        federated_timeline_removal: Iterable[str] = (),
        accept: Iterable[str] = (),
        media_removal: Iterable[str] = (),
        media_nsfw: Iterable[str] = (),
        banner_removal: Iterable[str] = (),
        avatar_removal: Iterable[str] = (),
        reject_deletes: Iterable[str] = (),
        report_removal: Iterable[str] = (),
        followers_only: Iterable[str] = (),
    ) -> None:
        self._targets: dict[SimplePolicyAction, set[str]] = {
            action: set() for action in SimplePolicyAction
        }
        self.config_version = 0
        #: Per-action (exact-domain frozenset, wildcard-suffix tuple) tables,
        #: rebuilt lazily whenever the target lists change.
        self._matchers: dict[SimplePolicyAction, tuple[frozenset[str], tuple[str, ...]]] | None = None
        initial = {
            SimplePolicyAction.REJECT: reject,
            SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL: federated_timeline_removal,
            SimplePolicyAction.ACCEPT: accept,
            SimplePolicyAction.MEDIA_REMOVAL: media_removal,
            SimplePolicyAction.MEDIA_NSFW: media_nsfw,
            SimplePolicyAction.BANNER_REMOVAL: banner_removal,
            SimplePolicyAction.AVATAR_REMOVAL: avatar_removal,
            SimplePolicyAction.REJECT_DELETES: reject_deletes,
            SimplePolicyAction.REPORT_REMOVAL: report_removal,
            SimplePolicyAction.FOLLOWERS_ONLY: followers_only,
        }
        for action, domains in initial.items():
            for domain in domains:
                self.add_target(action, domain)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_target(self, action: SimplePolicyAction | str, domain: str) -> None:
        """Add a domain pattern to an action's target list."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        pattern = domain.strip().lower()
        if not pattern.startswith("*."):
            pattern = normalise_domain(pattern)
        self._targets[action].add(pattern)
        self._matchers = None
        self._bump_config_version()

    def remove_target(self, action: SimplePolicyAction | str, domain: str) -> bool:
        """Remove a domain pattern from an action; return ``True`` if present."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        pattern = domain.strip().lower()
        if pattern in self._targets[action]:
            self._targets[action].discard(pattern)
            self._matchers = None
            self._bump_config_version()
            return True
        return False

    def targets(self, action: SimplePolicyAction | str) -> set[str]:
        """Return the domain patterns targeted by ``action``."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        return set(self._targets[action])

    def all_targets(self) -> set[str]:
        """Return every domain pattern targeted by any action."""
        combined: set[str] = set()
        for patterns in self._targets.values():
            combined |= patterns
        return combined

    def config(self) -> dict[str, list[str]]:
        """Return the ``mrf_simple`` configuration block (action -> domains)."""
        return {
            action.value: sorted(patterns)
            for action, patterns in self._targets.items()
            if patterns
        }

    # ------------------------------------------------------------------ #
    # Matching helpers
    # ------------------------------------------------------------------ #
    def _compiled_matchers(
        self,
    ) -> dict[SimplePolicyAction, tuple[frozenset[str], tuple[str, ...]]]:
        """Return per-action (exact set, wildcard suffixes) match tables.

        Exact patterns are stored normalised by :meth:`add_target`, so
        matching is one set lookup instead of a ``domain_matches`` walk that
        re-normalises the domain once per pattern.
        """
        matchers = self._matchers
        if matchers is None:
            matchers = {}
            for action, patterns in self._targets.items():
                exact = frozenset(p for p in patterns if not p.startswith("*."))
                suffixes = tuple(p[2:] for p in patterns if p.startswith("*."))
                matchers[action] = (exact, suffixes)
            self._matchers = matchers
        return matchers

    def matches(self, action: SimplePolicyAction | str, domain: str) -> bool:
        """Return ``True`` when ``domain`` is targeted by ``action``."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        exact, suffixes = self._compiled_matchers()[action]
        if domain in exact:  # hot path: callers pass already-normalised domains
            return True
        if not exact and not suffixes:
            return False
        domain = normalise_domain(domain)
        if domain in exact:
            return True
        return any(
            domain == suffix or domain.endswith("." + suffix) for suffix in suffixes
        )

    def matching_actions(self, domain: str) -> list[SimplePolicyAction]:
        """Return every action whose target list matches ``domain``."""
        return [
            action
            for action in SimplePolicyAction
            if self.matches(action, domain)
        ]

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def _matches_normalised(self, action: SimplePolicyAction, domain: str) -> bool:
        """Compiled matcher for callers passing already-normalised domains."""
        exact, suffixes = self._compiled_matchers()[action]
        if domain in exact:
            return True
        if not suffixes:
            return False
        return any(
            domain == suffix or domain.endswith("." + suffix) for suffix in suffixes
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply every matching action to ``activity``."""
        # Activity origins are normalised on construction, so the compiled
        # matcher can skip re-normalisation.
        return self._filter_with(activity, ctx, self._matches_normalised)

    def _filter_with(self, activity: Activity, ctx: MRFContext, matches) -> MRFDecision:
        """The filter body, parameterised on the matcher.

        ``matches(action, domain) -> bool`` defaults to the compiled tables;
        the perf harness injects the seed's per-pattern ``domain_matches``
        walk here to time the optimised path against a faithful baseline.
        """
        origin = activity.origin_domain

        # The accept list acts as an allow-list: when non-empty, anything not
        # on it (and not local) is rejected outright.
        accept_list = self._targets[SimplePolicyAction.ACCEPT]
        if accept_list and origin != ctx.local_domain:
            if not matches(SimplePolicyAction.ACCEPT, origin):
                return self.reject(
                    activity,
                    action=SimplePolicyAction.ACCEPT.value,
                    reason=f"{origin} is not on the accept list",
                )

        if matches(SimplePolicyAction.REJECT, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REJECT.value,
                reason=f"all activities from {origin} are rejected",
            )

        if activity.is_delete and matches(SimplePolicyAction.REJECT_DELETES, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REJECT_DELETES.value,
                reason=f"deletes from {origin} are rejected",
            )

        if activity.is_flag and matches(SimplePolicyAction.REPORT_REMOVAL, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REPORT_REMOVAL.value,
                reason=f"reports from {origin} are dropped",
            )

        return self._apply_rewrites(activity, origin, matches)

    def _apply_rewrites(self, activity: Activity, origin: str, matches) -> MRFDecision:
        """Apply the non-rejecting actions that match ``origin``."""
        applied: list[SimplePolicyAction] = []
        current = activity

        if matches(SimplePolicyAction.AVATAR_REMOVAL, origin):
            current = self._strip_actor_field(current, "avatar_url")
            applied.append(SimplePolicyAction.AVATAR_REMOVAL)
        if matches(SimplePolicyAction.BANNER_REMOVAL, origin):
            current = self._strip_actor_field(current, "banner_url")
            applied.append(SimplePolicyAction.BANNER_REMOVAL)

        post = current.post
        if post is not None:
            if matches(SimplePolicyAction.MEDIA_REMOVAL, origin) and post.has_media:
                post = post.with_changes(attachments=())
                current = current.with_post(post)
                applied.append(SimplePolicyAction.MEDIA_REMOVAL)
            if matches(SimplePolicyAction.MEDIA_NSFW, origin) and not post.sensitive:
                post = post.with_changes(sensitive=True)
                current = current.with_post(post)
                applied.append(SimplePolicyAction.MEDIA_NSFW)
            if matches(SimplePolicyAction.FOLLOWERS_ONLY, origin) and post.is_public:
                from repro.fediverse.post import Visibility

                post = post.with_changes(visibility=Visibility.FOLLOWERS_ONLY)
                current = current.with_post(post)
                applied.append(SimplePolicyAction.FOLLOWERS_ONLY)
            if matches(SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL, origin):
                current = current.with_flag("federated_timeline_removal", True)
                applied.append(SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL)

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1].value,
            reason="+".join(action.value for action in applied),
            modified=True,
        )

    def unconditional_reject(self, origin: str, local_domain: str) -> tuple[str, str] | None:
        """Return the ``(action, reason)`` applied to *every* activity from ``origin``.

        ``None`` when activities from the origin are not uniformly
        rejected.  Only the two origin-pure, type-independent checks at
        the head of :meth:`filter` qualify — the accept-list gate and the
        ``reject`` action; ``reject_deletes``/``report_removal`` depend on
        the activity type and never do.  This is the policy's
        ``origin_pure`` plan hook: batched delivery uses it to reject a
        whole single-origin batch without running the filter per activity
        (``origin`` must already be normalised, as activity origins are).
        """
        accept_list = self._targets[SimplePolicyAction.ACCEPT]
        if (
            accept_list
            and origin != local_domain
            and not self._matches_normalised(SimplePolicyAction.ACCEPT, origin)
        ):
            return (
                SimplePolicyAction.ACCEPT.value,
                f"{origin} is not on the accept list",
            )
        if self._matches_normalised(SimplePolicyAction.REJECT, origin):
            return (
                SimplePolicyAction.REJECT.value,
                f"all activities from {origin} are rejected",
            )
        return None

    def shared_stage(self, origin: str, local_domain: str) -> SharedRewrite | None:
        """Return the content-independent rewrite applied to ``origin``.

        This is the policy's ``origin_stages`` plan hook, consulted by the
        batch compiler once :meth:`unconditional_reject` stayed silent.  An
        origin matched only by stageable actions (``media_removal``,
        ``media_nsfw``, ``followers_only``,
        ``federated_timeline_removal``) gets an interned
        :class:`~repro.mrf.base.SharedRewrite` whose per-slice outcomes
        reproduce :meth:`_apply_rewrites` exactly — what each action does
        depends only on whether the post has media, is marked sensitive
        and is public.  ``None`` (→ the general walk) when the origin is
        also matched by an action no stage can express; an empty rewrite
        when no rewrite action matches at all (the policy provably never
        acts on the origin).
        """
        matches = self._matches_normalised
        for action in _UNSTAGEABLE_ACTIONS:
            if matches(action, origin):
                return None
        mask = tuple(matches(action, origin) for action in _STAGEABLE_ACTIONS)
        return _stage_for(mask)

    def plan(self) -> DecisionPlan:
        """Target-domain triggers plus the origin-pure shared reject.

        With a non-empty accept list the policy may reject *any* non-listed
        origin, so it must always run; otherwise it can only act on origins
        matching one of its patterns.  Either way the head of
        :meth:`filter` depends on the origin alone, so the plan exposes
        :meth:`unconditional_reject` as its origin-pure hook — and
        :meth:`shared_stage` describes the per-origin rewrites the batched
        path can apply without running the policy.
        """
        if self._targets[SimplePolicyAction.ACCEPT]:
            triggers = PolicyTriggers(match_all=True)
        else:
            exact: set[str] = set()
            suffixes: set[str] = set()
            for patterns in self._targets.values():
                for pattern in patterns:
                    if pattern.startswith("*."):
                        suffixes.add(pattern[2:])
                    else:
                        exact.add(pattern)
            triggers = PolicyTriggers(
                domains=frozenset(exact), suffixes=tuple(suffixes)
            )
        return DecisionPlan(
            triggers=triggers,
            origin_pure=self.unconditional_reject,
            origin_stages=self.shared_stage,
        )

    @staticmethod
    def _strip_actor_field(activity: Activity, field_name: str) -> Activity:
        """Return a copy of ``activity`` whose actor has ``field_name`` cleared."""
        if getattr(activity.actor, field_name, None) is None:
            return activity
        actor = replace(activity.actor, **{field_name: None})
        copy = replace(activity, actor=actor)
        copy.extra = dict(activity.extra)
        return copy

    # ------------------------------------------------------------------ #
    # Introspection used by the analysis layer
    # ------------------------------------------------------------------ #
    def describe_matches(self, domain: str) -> list[SimplePolicyMatch]:
        """Return the (action, pattern) pairs that match ``domain``."""
        matches = []
        for action, patterns in self._targets.items():
            for pattern in patterns:
                if domain_matches(domain, pattern):
                    matches.append(
                        SimplePolicyMatch(
                            action=action,
                            target_domain=normalise_domain(domain),
                            pattern=pattern,
                        )
                    )
        return matches

    def describe(self) -> dict[str, Any]:
        """Return a serialisable description of the policy."""
        return {"name": self.name, "config": self.config()}


# ---------------------------------------------------------------------- #
# Shared-rewrite stages (the origin_stages plan hook's tables)
# ---------------------------------------------------------------------- #
def _slice_of(post: Post) -> tuple[bool, bool, bool]:
    """The SimplePolicy slice key: the three post facts the stageable
    actions condition on."""
    return (len(post.attachments) > 0, post.sensitive, post.is_public)


def _build_rewriter(applied: tuple[SimplePolicyAction, ...]):
    """Build the fused slice rewrites ``(activity-level, post-level)``.

    Observable-identical to :meth:`SimplePolicy._apply_rewrites`'s
    ``with_changes``/``with_post``/``with_flag`` chain (note ``with_flag``
    stamps the flag into the *post's* extra dict too), with the final post
    and activity built in one copy each.  Rewritten posts are shared
    through the rewrite ledger, keyed by the applied-action tuple: every
    receiver applying the same actions to the same post gets one copy.
    """
    strip_media = SimplePolicyAction.MEDIA_REMOVAL in applied
    mark_nsfw = SimplePolicyAction.MEDIA_NSFW in applied
    followers = SimplePolicyAction.FOLLOWERS_ONLY in applied
    timeline = SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL in applied
    ledger = rewrite_ledger(("SimplePolicy",) + tuple(a.value for a in applied))

    def rewrite_post(post: Post) -> Post:
        entry = ledger.get(id(post))
        if entry is not None and entry[0] is post:
            return entry[1]
        ledger_room(ledger)
        new_post = object.__new__(type(post))
        new_post.__dict__.update(post.__dict__)
        new_post.extra = dict(post.extra)
        if strip_media:
            new_post.attachments = ()
        if mark_nsfw:
            new_post.sensitive = True
        if followers:
            new_post.visibility = Visibility.FOLLOWERS_ONLY
        if timeline:
            new_post.extra["federated_timeline_removal"] = True
        ledger[id(post)] = (post, new_post)
        return new_post

    def rewrite(activity: Activity, post: Post) -> Activity:
        current = object.__new__(type(activity))
        current.__dict__.update(activity.__dict__)
        current.extra = dict(activity.extra)
        current.obj = rewrite_post(post)
        if timeline:
            current.extra["federated_timeline_removal"] = True
        return current

    return rewrite, rewrite_post


def _outcome_for(applied: tuple[SimplePolicyAction, ...]) -> SliceOutcome:
    """Return the interned outcome of one applied-action combination.

    Keyed by the applied tuple rather than the configured mask: a
    ``media_nsfw``-only origin and a ``media_removal+media_nsfw`` origin
    produce the same outcome for an attachment-less insensitive post, so
    they share one outcome object, its ledger and its lean cache.
    """
    outcome = _OUTCOMES.get(applied)
    if outcome is None:
        rewrite, rewrite_post = _build_rewriter(applied)
        outcome = SliceOutcome(
            action=applied[-1].value,
            reason="+".join(action.value for action in applied),
            rewrite=rewrite,
            rewrite_post=rewrite_post,
            produces_visibility=(
                Visibility.FOLLOWERS_ONLY
                if SimplePolicyAction.FOLLOWERS_ONLY in applied
                else None
            ),
        )
        _OUTCOMES[applied] = outcome
    return outcome


def _stage_for(mask: tuple[bool, bool, bool, bool]) -> SharedRewrite:
    """Return the interned stage of one stageable-action mask.

    The mask says which of :data:`_STAGEABLE_ACTIONS` match the origin;
    the stage's outcome table enumerates, per ``(has_media, sensitive,
    is_public)`` slice, exactly the actions :meth:`SimplePolicy.filter`
    would apply.  A slice no action fires for is left out of the table
    (untouched); an all-``False`` mask interns the one empty stage, which
    the batch compiler reads as a provable per-origin no-op.  The age
    threshold is ``-inf``: the actions apply to posts of any age.
    """
    stage = _STAGES.get(mask)
    if stage is None:
        outcomes: dict[tuple[bool, bool, bool], SliceOutcome] = {}
        for has_media in (False, True):
            for sensitive in (False, True):
                for is_public in (False, True):
                    applied = []
                    if mask[0] and has_media:
                        applied.append(SimplePolicyAction.MEDIA_REMOVAL)
                    if mask[1] and not sensitive:
                        applied.append(SimplePolicyAction.MEDIA_NSFW)
                    if mask[2] and is_public:
                        applied.append(SimplePolicyAction.FOLLOWERS_ONLY)
                    if mask[3]:
                        applied.append(
                            SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL
                        )
                    if applied:
                        outcomes[(has_media, sensitive, is_public)] = (
                            _outcome_for(tuple(applied))
                        )
        stage = SharedRewrite(
            age_threshold=float("-inf"), slice_of=_slice_of, outcomes=outcomes
        )
        _STAGES[mask] = stage
    return stage


#: applied-action tuple -> interned slice outcome (shared across masks).
_OUTCOMES: dict[tuple[SimplePolicyAction, ...], SliceOutcome] = {}

#: stageable-action mask -> interned SharedRewrite stage (≤ 16 entries).
_STAGES: dict[tuple[bool, bool, bool, bool], SharedRewrite] = {}


def _clear_lean_caches() -> None:
    for outcome in _OUTCOMES.values():
        outcome.lean_cache.clear()


on_clear(_clear_lean_caches)
