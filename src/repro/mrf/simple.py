"""Pleroma's ``SimplePolicy``: per-instance moderation actions.

The SimplePolicy is the work-horse of federation moderation and the policy
the paper analyses in most depth (Figures 2 and 3).  Administrators attach
*actions* to lists of target instance domains; incoming activities whose
origin matches a target are then rejected, stripped of media, forced NSFW,
and so on.  The ten actions modelled here are exactly the ten the paper
reports for Figures 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Iterable

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.identifiers import domain_matches, normalise_domain
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)


class SimplePolicyAction(str, Enum):
    """The actions the SimplePolicy can apply to matching instances.

    The values follow the names used in Pleroma's ``mrf_simple``
    configuration block (and hence in the dataset the paper collects).
    """

    REJECT = "reject"
    FEDERATED_TIMELINE_REMOVAL = "federated_timeline_removal"
    ACCEPT = "accept"
    MEDIA_REMOVAL = "media_removal"
    MEDIA_NSFW = "media_nsfw"
    BANNER_REMOVAL = "banner_removal"
    AVATAR_REMOVAL = "avatar_removal"
    REJECT_DELETES = "reject_deletes"
    REPORT_REMOVAL = "report_removal"
    FOLLOWERS_ONLY = "followers_only"

    @classmethod
    def from_string(cls, value: str) -> "SimplePolicyAction":
        """Parse an action name, accepting a few common aliases."""
        aliases = {
            "fed_timeline_rem": cls.FEDERATED_TIMELINE_REMOVAL,
            "nsfw": cls.MEDIA_NSFW,
        }
        cleaned = value.strip().lower()
        if cleaned in aliases:
            return aliases[cleaned]
        return cls(cleaned)


#: Actions that rewrite (rather than reject) the carried post.
REWRITE_ACTIONS = frozenset(
    {
        SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL,
        SimplePolicyAction.MEDIA_REMOVAL,
        SimplePolicyAction.MEDIA_NSFW,
        SimplePolicyAction.BANNER_REMOVAL,
        SimplePolicyAction.AVATAR_REMOVAL,
        SimplePolicyAction.FOLLOWERS_ONLY,
    }
)


@dataclass(frozen=True)
class SimplePolicyMatch:
    """A record of one action matching one activity (used for introspection)."""

    action: SimplePolicyAction
    target_domain: str
    pattern: str


class SimplePolicy(MRFPolicy):
    """Restrict the visibility of activities from certain instances.

    Each action holds a set of domain patterns (exact domains or
    ``*.domain`` wildcards).  The policy applies every matching action in a
    fixed order, with ``reject`` and the accept-list check short-circuiting.
    """

    name = "SimplePolicy"

    def __init__(
        self,
        reject: Iterable[str] = (),
        federated_timeline_removal: Iterable[str] = (),
        accept: Iterable[str] = (),
        media_removal: Iterable[str] = (),
        media_nsfw: Iterable[str] = (),
        banner_removal: Iterable[str] = (),
        avatar_removal: Iterable[str] = (),
        reject_deletes: Iterable[str] = (),
        report_removal: Iterable[str] = (),
        followers_only: Iterable[str] = (),
    ) -> None:
        self._targets: dict[SimplePolicyAction, set[str]] = {
            action: set() for action in SimplePolicyAction
        }
        self.config_version = 0
        #: Per-action (exact-domain frozenset, wildcard-suffix tuple) tables,
        #: rebuilt lazily whenever the target lists change.
        self._matchers: dict[SimplePolicyAction, tuple[frozenset[str], tuple[str, ...]]] | None = None
        initial = {
            SimplePolicyAction.REJECT: reject,
            SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL: federated_timeline_removal,
            SimplePolicyAction.ACCEPT: accept,
            SimplePolicyAction.MEDIA_REMOVAL: media_removal,
            SimplePolicyAction.MEDIA_NSFW: media_nsfw,
            SimplePolicyAction.BANNER_REMOVAL: banner_removal,
            SimplePolicyAction.AVATAR_REMOVAL: avatar_removal,
            SimplePolicyAction.REJECT_DELETES: reject_deletes,
            SimplePolicyAction.REPORT_REMOVAL: report_removal,
            SimplePolicyAction.FOLLOWERS_ONLY: followers_only,
        }
        for action, domains in initial.items():
            for domain in domains:
                self.add_target(action, domain)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_target(self, action: SimplePolicyAction | str, domain: str) -> None:
        """Add a domain pattern to an action's target list."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        pattern = domain.strip().lower()
        if not pattern.startswith("*."):
            pattern = normalise_domain(pattern)
        self._targets[action].add(pattern)
        self._matchers = None
        self._bump_config_version()

    def remove_target(self, action: SimplePolicyAction | str, domain: str) -> bool:
        """Remove a domain pattern from an action; return ``True`` if present."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        pattern = domain.strip().lower()
        if pattern in self._targets[action]:
            self._targets[action].discard(pattern)
            self._matchers = None
            self._bump_config_version()
            return True
        return False

    def targets(self, action: SimplePolicyAction | str) -> set[str]:
        """Return the domain patterns targeted by ``action``."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        return set(self._targets[action])

    def all_targets(self) -> set[str]:
        """Return every domain pattern targeted by any action."""
        combined: set[str] = set()
        for patterns in self._targets.values():
            combined |= patterns
        return combined

    def config(self) -> dict[str, list[str]]:
        """Return the ``mrf_simple`` configuration block (action -> domains)."""
        return {
            action.value: sorted(patterns)
            for action, patterns in self._targets.items()
            if patterns
        }

    # ------------------------------------------------------------------ #
    # Matching helpers
    # ------------------------------------------------------------------ #
    def _compiled_matchers(
        self,
    ) -> dict[SimplePolicyAction, tuple[frozenset[str], tuple[str, ...]]]:
        """Return per-action (exact set, wildcard suffixes) match tables.

        Exact patterns are stored normalised by :meth:`add_target`, so
        matching is one set lookup instead of a ``domain_matches`` walk that
        re-normalises the domain once per pattern.
        """
        matchers = self._matchers
        if matchers is None:
            matchers = {}
            for action, patterns in self._targets.items():
                exact = frozenset(p for p in patterns if not p.startswith("*."))
                suffixes = tuple(p[2:] for p in patterns if p.startswith("*."))
                matchers[action] = (exact, suffixes)
            self._matchers = matchers
        return matchers

    def matches(self, action: SimplePolicyAction | str, domain: str) -> bool:
        """Return ``True`` when ``domain`` is targeted by ``action``."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        exact, suffixes = self._compiled_matchers()[action]
        if domain in exact:  # hot path: callers pass already-normalised domains
            return True
        if not exact and not suffixes:
            return False
        domain = normalise_domain(domain)
        if domain in exact:
            return True
        return any(
            domain == suffix or domain.endswith("." + suffix) for suffix in suffixes
        )

    def matching_actions(self, domain: str) -> list[SimplePolicyAction]:
        """Return every action whose target list matches ``domain``."""
        return [
            action
            for action in SimplePolicyAction
            if self.matches(action, domain)
        ]

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def _matches_normalised(self, action: SimplePolicyAction, domain: str) -> bool:
        """Compiled matcher for callers passing already-normalised domains."""
        exact, suffixes = self._compiled_matchers()[action]
        if domain in exact:
            return True
        if not suffixes:
            return False
        return any(
            domain == suffix or domain.endswith("." + suffix) for suffix in suffixes
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply every matching action to ``activity``."""
        # Activity origins are normalised on construction, so the compiled
        # matcher can skip re-normalisation.
        return self._filter_with(activity, ctx, self._matches_normalised)

    def _filter_with(self, activity: Activity, ctx: MRFContext, matches) -> MRFDecision:
        """The filter body, parameterised on the matcher.

        ``matches(action, domain) -> bool`` defaults to the compiled tables;
        the perf harness injects the seed's per-pattern ``domain_matches``
        walk here to time the optimised path against a faithful baseline.
        """
        origin = activity.origin_domain

        # The accept list acts as an allow-list: when non-empty, anything not
        # on it (and not local) is rejected outright.
        accept_list = self._targets[SimplePolicyAction.ACCEPT]
        if accept_list and origin != ctx.local_domain:
            if not matches(SimplePolicyAction.ACCEPT, origin):
                return self.reject(
                    activity,
                    action=SimplePolicyAction.ACCEPT.value,
                    reason=f"{origin} is not on the accept list",
                )

        if matches(SimplePolicyAction.REJECT, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REJECT.value,
                reason=f"all activities from {origin} are rejected",
            )

        if activity.is_delete and matches(SimplePolicyAction.REJECT_DELETES, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REJECT_DELETES.value,
                reason=f"deletes from {origin} are rejected",
            )

        if activity.is_flag and matches(SimplePolicyAction.REPORT_REMOVAL, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REPORT_REMOVAL.value,
                reason=f"reports from {origin} are dropped",
            )

        return self._apply_rewrites(activity, origin, matches)

    def _apply_rewrites(self, activity: Activity, origin: str, matches) -> MRFDecision:
        """Apply the non-rejecting actions that match ``origin``."""
        applied: list[SimplePolicyAction] = []
        current = activity

        if matches(SimplePolicyAction.AVATAR_REMOVAL, origin):
            current = self._strip_actor_field(current, "avatar_url")
            applied.append(SimplePolicyAction.AVATAR_REMOVAL)
        if matches(SimplePolicyAction.BANNER_REMOVAL, origin):
            current = self._strip_actor_field(current, "banner_url")
            applied.append(SimplePolicyAction.BANNER_REMOVAL)

        post = current.post
        if post is not None:
            if matches(SimplePolicyAction.MEDIA_REMOVAL, origin) and post.has_media:
                post = post.with_changes(attachments=())
                current = current.with_post(post)
                applied.append(SimplePolicyAction.MEDIA_REMOVAL)
            if matches(SimplePolicyAction.MEDIA_NSFW, origin) and not post.sensitive:
                post = post.with_changes(sensitive=True)
                current = current.with_post(post)
                applied.append(SimplePolicyAction.MEDIA_NSFW)
            if matches(SimplePolicyAction.FOLLOWERS_ONLY, origin) and post.is_public:
                from repro.fediverse.post import Visibility

                post = post.with_changes(visibility=Visibility.FOLLOWERS_ONLY)
                current = current.with_post(post)
                applied.append(SimplePolicyAction.FOLLOWERS_ONLY)
            if matches(SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL, origin):
                current = current.with_flag("federated_timeline_removal", True)
                applied.append(SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL)

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1].value,
            reason="+".join(action.value for action in applied),
            modified=True,
        )

    def unconditional_reject(self, origin: str, local_domain: str) -> tuple[str, str] | None:
        """Return the ``(action, reason)`` applied to *every* activity from ``origin``.

        ``None`` when activities from the origin are not uniformly
        rejected.  Only the two origin-pure, type-independent checks at
        the head of :meth:`filter` qualify — the accept-list gate and the
        ``reject`` action; ``reject_deletes``/``report_removal`` depend on
        the activity type and never do.  This is the policy's
        ``origin_pure`` plan hook: batched delivery uses it to reject a
        whole single-origin batch without running the filter per activity
        (``origin`` must already be normalised, as activity origins are).
        """
        accept_list = self._targets[SimplePolicyAction.ACCEPT]
        if (
            accept_list
            and origin != local_domain
            and not self._matches_normalised(SimplePolicyAction.ACCEPT, origin)
        ):
            return (
                SimplePolicyAction.ACCEPT.value,
                f"{origin} is not on the accept list",
            )
        if self._matches_normalised(SimplePolicyAction.REJECT, origin):
            return (
                SimplePolicyAction.REJECT.value,
                f"all activities from {origin} are rejected",
            )
        return None

    def plan(self) -> DecisionPlan:
        """Target-domain triggers plus the origin-pure shared reject.

        With a non-empty accept list the policy may reject *any* non-listed
        origin, so it must always run; otherwise it can only act on origins
        matching one of its patterns.  Either way the head of
        :meth:`filter` depends on the origin alone, so the plan exposes
        :meth:`unconditional_reject` as its origin-pure hook.
        """
        if self._targets[SimplePolicyAction.ACCEPT]:
            triggers = PolicyTriggers(match_all=True)
        else:
            exact: set[str] = set()
            suffixes: set[str] = set()
            for patterns in self._targets.values():
                for pattern in patterns:
                    if pattern.startswith("*."):
                        suffixes.add(pattern[2:])
                    else:
                        exact.add(pattern)
            triggers = PolicyTriggers(
                domains=frozenset(exact), suffixes=tuple(suffixes)
            )
        return DecisionPlan(triggers=triggers, origin_pure=self.unconditional_reject)

    @staticmethod
    def _strip_actor_field(activity: Activity, field_name: str) -> Activity:
        """Return a copy of ``activity`` whose actor has ``field_name`` cleared."""
        if getattr(activity.actor, field_name, None) is None:
            return activity
        actor = replace(activity.actor, **{field_name: None})
        copy = replace(activity, actor=actor)
        copy.extra = dict(activity.extra)
        return copy

    # ------------------------------------------------------------------ #
    # Introspection used by the analysis layer
    # ------------------------------------------------------------------ #
    def describe_matches(self, domain: str) -> list[SimplePolicyMatch]:
        """Return the (action, pattern) pairs that match ``domain``."""
        matches = []
        for action, patterns in self._targets.items():
            for pattern in patterns:
                if domain_matches(domain, pattern):
                    matches.append(
                        SimplePolicyMatch(
                            action=action,
                            target_domain=normalise_domain(domain),
                            pattern=pattern,
                        )
                    )
        return matches

    def describe(self) -> dict[str, Any]:
        """Return a serialisable description of the policy."""
        return {"name": self.name, "config": self.config()}
