"""Pleroma's ``SimplePolicy``: per-instance moderation actions.

The SimplePolicy is the work-horse of federation moderation and the policy
the paper analyses in most depth (Figures 2 and 3).  Administrators attach
*actions* to lists of target instance domains; incoming activities whose
origin matches a target are then rejected, stripped of media, forced NSFW,
and so on.  The ten actions modelled here are exactly the ten the paper
reports for Figures 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Iterable

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.identifiers import domain_matches, normalise_domain
from repro.mrf.base import MRFContext, MRFDecision, MRFPolicy


class SimplePolicyAction(str, Enum):
    """The actions the SimplePolicy can apply to matching instances.

    The values follow the names used in Pleroma's ``mrf_simple``
    configuration block (and hence in the dataset the paper collects).
    """

    REJECT = "reject"
    FEDERATED_TIMELINE_REMOVAL = "federated_timeline_removal"
    ACCEPT = "accept"
    MEDIA_REMOVAL = "media_removal"
    MEDIA_NSFW = "media_nsfw"
    BANNER_REMOVAL = "banner_removal"
    AVATAR_REMOVAL = "avatar_removal"
    REJECT_DELETES = "reject_deletes"
    REPORT_REMOVAL = "report_removal"
    FOLLOWERS_ONLY = "followers_only"

    @classmethod
    def from_string(cls, value: str) -> "SimplePolicyAction":
        """Parse an action name, accepting a few common aliases."""
        aliases = {
            "fed_timeline_rem": cls.FEDERATED_TIMELINE_REMOVAL,
            "nsfw": cls.MEDIA_NSFW,
        }
        cleaned = value.strip().lower()
        if cleaned in aliases:
            return aliases[cleaned]
        return cls(cleaned)


#: Actions that rewrite (rather than reject) the carried post.
REWRITE_ACTIONS = frozenset(
    {
        SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL,
        SimplePolicyAction.MEDIA_REMOVAL,
        SimplePolicyAction.MEDIA_NSFW,
        SimplePolicyAction.BANNER_REMOVAL,
        SimplePolicyAction.AVATAR_REMOVAL,
        SimplePolicyAction.FOLLOWERS_ONLY,
    }
)


@dataclass(frozen=True)
class SimplePolicyMatch:
    """A record of one action matching one activity (used for introspection)."""

    action: SimplePolicyAction
    target_domain: str
    pattern: str


class SimplePolicy(MRFPolicy):
    """Restrict the visibility of activities from certain instances.

    Each action holds a set of domain patterns (exact domains or
    ``*.domain`` wildcards).  The policy applies every matching action in a
    fixed order, with ``reject`` and the accept-list check short-circuiting.
    """

    name = "SimplePolicy"

    def __init__(
        self,
        reject: Iterable[str] = (),
        federated_timeline_removal: Iterable[str] = (),
        accept: Iterable[str] = (),
        media_removal: Iterable[str] = (),
        media_nsfw: Iterable[str] = (),
        banner_removal: Iterable[str] = (),
        avatar_removal: Iterable[str] = (),
        reject_deletes: Iterable[str] = (),
        report_removal: Iterable[str] = (),
        followers_only: Iterable[str] = (),
    ) -> None:
        self._targets: dict[SimplePolicyAction, set[str]] = {
            action: set() for action in SimplePolicyAction
        }
        initial = {
            SimplePolicyAction.REJECT: reject,
            SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL: federated_timeline_removal,
            SimplePolicyAction.ACCEPT: accept,
            SimplePolicyAction.MEDIA_REMOVAL: media_removal,
            SimplePolicyAction.MEDIA_NSFW: media_nsfw,
            SimplePolicyAction.BANNER_REMOVAL: banner_removal,
            SimplePolicyAction.AVATAR_REMOVAL: avatar_removal,
            SimplePolicyAction.REJECT_DELETES: reject_deletes,
            SimplePolicyAction.REPORT_REMOVAL: report_removal,
            SimplePolicyAction.FOLLOWERS_ONLY: followers_only,
        }
        for action, domains in initial.items():
            for domain in domains:
                self.add_target(action, domain)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_target(self, action: SimplePolicyAction | str, domain: str) -> None:
        """Add a domain pattern to an action's target list."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        pattern = domain.strip().lower()
        if not pattern.startswith("*."):
            pattern = normalise_domain(pattern)
        self._targets[action].add(pattern)

    def remove_target(self, action: SimplePolicyAction | str, domain: str) -> bool:
        """Remove a domain pattern from an action; return ``True`` if present."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        pattern = domain.strip().lower()
        if pattern in self._targets[action]:
            self._targets[action].discard(pattern)
            return True
        return False

    def targets(self, action: SimplePolicyAction | str) -> set[str]:
        """Return the domain patterns targeted by ``action``."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        return set(self._targets[action])

    def all_targets(self) -> set[str]:
        """Return every domain pattern targeted by any action."""
        combined: set[str] = set()
        for patterns in self._targets.values():
            combined |= patterns
        return combined

    def config(self) -> dict[str, list[str]]:
        """Return the ``mrf_simple`` configuration block (action -> domains)."""
        return {
            action.value: sorted(patterns)
            for action, patterns in self._targets.items()
            if patterns
        }

    # ------------------------------------------------------------------ #
    # Matching helpers
    # ------------------------------------------------------------------ #
    def matches(self, action: SimplePolicyAction | str, domain: str) -> bool:
        """Return ``True`` when ``domain`` is targeted by ``action``."""
        if isinstance(action, str):
            action = SimplePolicyAction.from_string(action)
        return any(
            domain_matches(domain, pattern) for pattern in self._targets[action]
        )

    def matching_actions(self, domain: str) -> list[SimplePolicyAction]:
        """Return every action whose target list matches ``domain``."""
        return [
            action
            for action in SimplePolicyAction
            if self.matches(action, domain)
        ]

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply every matching action to ``activity``."""
        origin = activity.origin_domain

        # The accept list acts as an allow-list: when non-empty, anything not
        # on it (and not local) is rejected outright.
        accept_list = self._targets[SimplePolicyAction.ACCEPT]
        if accept_list and origin != ctx.local_domain:
            if not self.matches(SimplePolicyAction.ACCEPT, origin):
                return self.reject(
                    activity,
                    action=SimplePolicyAction.ACCEPT.value,
                    reason=f"{origin} is not on the accept list",
                )

        if self.matches(SimplePolicyAction.REJECT, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REJECT.value,
                reason=f"all activities from {origin} are rejected",
            )

        if activity.is_delete and self.matches(SimplePolicyAction.REJECT_DELETES, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REJECT_DELETES.value,
                reason=f"deletes from {origin} are rejected",
            )

        if activity.is_flag and self.matches(SimplePolicyAction.REPORT_REMOVAL, origin):
            return self.reject(
                activity,
                action=SimplePolicyAction.REPORT_REMOVAL.value,
                reason=f"reports from {origin} are dropped",
            )

        return self._apply_rewrites(activity, origin)

    def _apply_rewrites(self, activity: Activity, origin: str) -> MRFDecision:
        """Apply the non-rejecting actions that match ``origin``."""
        applied: list[SimplePolicyAction] = []
        current = activity

        if self.matches(SimplePolicyAction.AVATAR_REMOVAL, origin):
            current = self._strip_actor_field(current, "avatar_url")
            applied.append(SimplePolicyAction.AVATAR_REMOVAL)
        if self.matches(SimplePolicyAction.BANNER_REMOVAL, origin):
            current = self._strip_actor_field(current, "banner_url")
            applied.append(SimplePolicyAction.BANNER_REMOVAL)

        post = current.post
        if post is not None:
            if self.matches(SimplePolicyAction.MEDIA_REMOVAL, origin) and post.has_media:
                post = post.with_changes(attachments=())
                current = current.with_post(post)
                applied.append(SimplePolicyAction.MEDIA_REMOVAL)
            if self.matches(SimplePolicyAction.MEDIA_NSFW, origin) and not post.sensitive:
                post = post.with_changes(sensitive=True)
                current = current.with_post(post)
                applied.append(SimplePolicyAction.MEDIA_NSFW)
            if self.matches(SimplePolicyAction.FOLLOWERS_ONLY, origin) and post.is_public:
                from repro.fediverse.post import Visibility

                post = post.with_changes(visibility=Visibility.FOLLOWERS_ONLY)
                current = current.with_post(post)
                applied.append(SimplePolicyAction.FOLLOWERS_ONLY)
            if self.matches(SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL, origin):
                current = current.with_flag("federated_timeline_removal", True)
                applied.append(SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL)

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1].value,
            reason="+".join(action.value for action in applied),
            modified=True,
        )

    @staticmethod
    def _strip_actor_field(activity: Activity, field_name: str) -> Activity:
        """Return a copy of ``activity`` whose actor has ``field_name`` cleared."""
        if getattr(activity.actor, field_name, None) is None:
            return activity
        actor = replace(activity.actor, **{field_name: None})
        copy = replace(activity, actor=actor)
        copy.extra = dict(activity.extra)
        return copy

    # ------------------------------------------------------------------ #
    # Introspection used by the analysis layer
    # ------------------------------------------------------------------ #
    def describe_matches(self, domain: str) -> list[SimplePolicyMatch]:
        """Return the (action, pattern) pairs that match ``domain``."""
        matches = []
        for action, patterns in self._targets.items():
            for pattern in patterns:
                if domain_matches(domain, pattern):
                    matches.append(
                        SimplePolicyMatch(
                            action=action,
                            target_domain=normalise_domain(domain),
                            pattern=pattern,
                        )
                    )
        return matches

    def describe(self) -> dict[str, Any]:
        """Return a serialisable description of the policy."""
        return {"name": self.name, "config": self.config()}
