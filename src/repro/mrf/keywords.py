"""Content-based policies operating on post text.

* ``KeywordPolicy`` — reject, de-list or rewrite posts matching configured
  patterns (42 instances in Table 3 enable it).
* ``VocabularyPolicy`` — restrict which ActivityPub activity types the
  instance accepts at all.
* ``NormalizeMarkup`` — sanitise the HTML-ish markup carried in post bodies.
* ``NoEmptyPolicy`` — drop local posts that carry no content at all.
* ``NoPlaceholderTextPolicy`` — strip placeholder bodies (e.g. ``.``) from
  posts that only exist to carry media.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.post import Visibility
from repro.mrf.base import MRFContext, MRFDecision, MRFPolicy

_TAG_RE = re.compile(r"<[^>]+>")
_PLACEHOLDER_BODIES = {".", "-", "_", "placeholder", "​"}


class KeywordPolicy(MRFPolicy):
    """A list of patterns which result in messages being rejected, unlisted
    or having matches replaced."""

    name = "KeywordPolicy"

    def __init__(
        self,
        reject: Iterable[str] = (),
        federated_timeline_removal: Iterable[str] = (),
        replace: dict[str, str] | None = None,
    ) -> None:
        self.reject_patterns = [self._compile(p) for p in reject]
        self.ftl_removal_patterns = [self._compile(p) for p in federated_timeline_removal]
        self.replacements = dict(replace or {})

    @staticmethod
    def _compile(pattern: str) -> re.Pattern[str]:
        """Compile a configured pattern case-insensitively."""
        return re.compile(pattern, re.IGNORECASE)

    def config(self) -> dict[str, Any]:
        """Return the configured pattern lists."""
        return {
            "reject": [p.pattern for p in self.reject_patterns],
            "federated_timeline_removal": [p.pattern for p in self.ftl_removal_patterns],
            "replace": dict(self.replacements),
        }

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Check the post content against the configured patterns."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        text = f"{post.subject or ''} {post.content}"

        for pattern in self.reject_patterns:
            if pattern.search(text):
                return self.reject(
                    activity,
                    action="reject",
                    reason=f"matched keyword pattern {pattern.pattern!r}",
                )

        current = activity
        applied: list[str] = []

        new_content = post.content
        for needle, replacement in self.replacements.items():
            if re.search(needle, new_content, re.IGNORECASE):
                new_content = re.sub(needle, replacement, new_content, flags=re.IGNORECASE)
                applied.append("replace")
        if new_content != post.content:
            post = post.with_changes(content=new_content)
            current = current.with_post(post)

        for pattern in self.ftl_removal_patterns:
            if pattern.search(text):
                current = current.with_flag("federated_timeline_removal", True)
                applied.append("federated_timeline_removal")
                break

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1],
            reason="+".join(sorted(set(applied))),
            modified=True,
        )


class VocabularyPolicy(MRFPolicy):
    """Restrict activities to a configured set of activity types."""

    name = "VocabularyPolicy"

    def __init__(
        self,
        accept: Iterable[str] = (),
        reject: Iterable[str] = (),
    ) -> None:
        self.accept_types = {t.capitalize() for t in accept}
        self.reject_types = {t.capitalize() for t in reject}

    def config(self) -> dict[str, Any]:
        """Return the configured vocabulary."""
        return {
            "accept": sorted(self.accept_types),
            "reject": sorted(self.reject_types),
        }

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject activity types outside the configured vocabulary."""
        type_name = activity.activity_type.value
        if type_name in self.reject_types:
            return self.reject(
                activity,
                action="reject",
                reason=f"activity type {type_name} is rejected",
            )
        if self.accept_types and type_name not in self.accept_types:
            return self.reject(
                activity,
                action="reject",
                reason=f"activity type {type_name} is not in the accepted vocabulary",
            )
        return self.accept(activity)


class NormalizeMarkup(MRFPolicy):
    """Normalise the markup of incoming posts.

    Real Pleroma scrubs the HTML of remote posts to a safe subset; here we
    model that as stripping every markup tag, which preserves the textual
    content the Perspective scorer later analyses.
    """

    name = "NormalizeMarkup"

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Strip markup tags from the post content."""
        post = activity.post
        if post is None or "<" not in post.content:
            return self.accept(activity)
        cleaned = _TAG_RE.sub("", post.content)
        if cleaned == post.content:
            return self.accept(activity)
        rewritten = post.with_changes(content=cleaned)
        return self.accept(
            activity.with_post(rewritten),
            action="normalize",
            reason="markup stripped",
            modified=True,
        )


class NoEmptyPolicy(MRFPolicy):
    """Reject posts that carry neither text nor media."""

    name = "NoEmptyPolicy"

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Drop posts with an empty body and no attachments."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        if post.content.strip() or post.has_media:
            return self.accept(activity)
        return self.reject(activity, action="reject", reason="empty post")


class NoPlaceholderTextPolicy(MRFPolicy):
    """Strip placeholder bodies from media-only posts."""

    name = "NoPlaceholderTextPolicy"

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Clear placeholder bodies such as ``.`` on posts that carry media."""
        post = activity.post
        if post is None or not post.has_media:
            return self.accept(activity)
        if post.content.strip().lower() not in _PLACEHOLDER_BODIES:
            return self.accept(activity)
        rewritten = post.with_changes(content="")
        return self.accept(
            activity.with_post(rewritten),
            action="strip_placeholder",
            reason="placeholder body removed",
            modified=True,
        )
