"""Content-based policies operating on post text.

* ``KeywordPolicy`` — reject, de-list or rewrite posts matching configured
  patterns (42 instances in Table 3 enable it).
* ``VocabularyPolicy`` — restrict which ActivityPub activity types the
  instance accepts at all.
* ``NormalizeMarkup`` — sanitise the HTML-ish markup carried in post bodies.
* ``NoEmptyPolicy`` — drop local posts that carry no content at all.
* ``NoPlaceholderTextPolicy`` — strip placeholder bodies (e.g. ``.``) from
  posts that only exist to carry media.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.post import Visibility
from repro.mrf.base import (
    ContentTrigger,
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)
from repro.mrf.shared import shared_trigger_columns

_TAG_RE = re.compile(r"<[^>]+>")
_PLACEHOLDER_BODIES = {".", "-", "_", "placeholder", "​"}

#: Characters that make a configured pattern a real regex rather than a
#: literal phrase.  Literal phrases back the plan's substring trigger; a
#: single regex pattern in the configuration makes the policy run always.
_REGEX_SPECIALS = frozenset(".^$*+?{}[]()|\\")


class KeywordPolicy(MRFPolicy):
    """A list of patterns which result in messages being rejected, unlisted
    or having matches replaced.

    Pattern lists are managed through :meth:`add_pattern` /
    :meth:`remove_pattern` / :meth:`set_replacement`, which bump the
    configuration version so compiled pipelines rebuild the plan (and its
    interned content columns) on mutation.
    """

    name = "KeywordPolicy"

    def __init__(
        self,
        reject: Iterable[str] = (),
        federated_timeline_removal: Iterable[str] = (),
        replace: dict[str, str] | None = None,
    ) -> None:
        self._reject_patterns = [self._compile(p) for p in reject]
        self._ftl_removal_patterns = [
            self._compile(p) for p in federated_timeline_removal
        ]
        self._replacements = dict(replace or {})

    @staticmethod
    def _compile(pattern: str) -> re.Pattern[str]:
        """Compile a configured pattern case-insensitively."""
        return re.compile(pattern, re.IGNORECASE)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def reject_patterns(self) -> tuple[re.Pattern[str], ...]:
        """Return the compiled reject patterns."""
        return tuple(self._reject_patterns)

    @property
    def ftl_removal_patterns(self) -> tuple[re.Pattern[str], ...]:
        """Return the compiled federated-timeline-removal patterns."""
        return tuple(self._ftl_removal_patterns)

    @property
    def replacements(self) -> dict[str, str]:
        """Return the needle -> replacement mapping."""
        return dict(self._replacements)

    def add_pattern(self, kind: str, pattern: str) -> None:
        """Add a pattern to ``"reject"`` or ``"federated_timeline_removal"``."""
        self._pattern_list(kind).append(self._compile(pattern))
        self._bump_config_version()

    def remove_pattern(self, kind: str, pattern: str) -> bool:
        """Remove a pattern; return ``True`` when it was configured."""
        patterns = self._pattern_list(kind)
        for index, compiled in enumerate(patterns):
            if compiled.pattern == pattern:
                del patterns[index]
                self._bump_config_version()
                return True
        return False

    def set_replacement(self, needle: str, replacement: str) -> None:
        """Add (or overwrite) a needle -> replacement rewrite."""
        self._replacements[needle] = replacement
        self._bump_config_version()

    def remove_replacement(self, needle: str) -> bool:
        """Remove a replacement; return ``True`` when it was configured."""
        if needle in self._replacements:
            del self._replacements[needle]
            self._bump_config_version()
            return True
        return False

    def _pattern_list(self, kind: str) -> list[re.Pattern[str]]:
        if kind == "reject":
            return self._reject_patterns
        if kind == "federated_timeline_removal":
            return self._ftl_removal_patterns
        raise ValueError(f"unknown keyword pattern kind: {kind!r}")

    def config(self) -> dict[str, Any]:
        """Return the configured pattern lists."""
        return {
            "reject": [p.pattern for p in self._reject_patterns],
            "federated_timeline_removal": [
                p.pattern for p in self._ftl_removal_patterns
            ],
            "replace": dict(self._replacements),
        }

    # ------------------------------------------------------------------ #
    # The decision plan
    # ------------------------------------------------------------------ #
    def plan(self) -> DecisionPlan:
        """A substring trigger over the configured literal phrases.

        Every configured pattern is a case-insensitive ``re.search``, so a
        *literal* pattern can only match a text that contains it as a
        substring — the trigger scans for all literals at once through the
        shared interned columns and the policy is skipped when none occurs.
        A single non-literal (real regex) pattern falls back to running the
        policy on every post-carrying activity; with nothing configured at
        all the policy never acts.
        """
        raw = [p.pattern for p in self._reject_patterns]
        raw += [p.pattern for p in self._ftl_removal_patterns]
        raw += list(self._replacements)
        if not raw:
            return DecisionPlan(triggers=PolicyTriggers())
        literals = set()
        for pattern in raw:
            if not pattern.isascii() or _REGEX_SPECIALS & set(pattern):
                return DecisionPlan(triggers=PolicyTriggers(match_all=True))
            literals.add(pattern.lower())
        columns = shared_trigger_columns(
            literals, anchored=False, with_subject=True, ignorecase=True
        )
        return DecisionPlan(
            triggers=PolicyTriggers(content=ContentTrigger(columns=columns))
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Check the post content against the configured patterns."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        text = f"{post.subject or ''} {post.content}"

        for pattern in self._reject_patterns:
            if pattern.search(text):
                return self.reject(
                    activity,
                    action="reject",
                    reason=f"matched keyword pattern {pattern.pattern!r}",
                )

        current = activity
        applied: list[str] = []

        new_content = post.content
        for needle, replacement in self._replacements.items():
            if re.search(needle, new_content, re.IGNORECASE):
                new_content = re.sub(needle, replacement, new_content, flags=re.IGNORECASE)
                applied.append("replace")
        if new_content != post.content:
            post = post.with_changes(content=new_content)
            current = current.with_post(post)

        for pattern in self._ftl_removal_patterns:
            if pattern.search(text):
                current = current.with_flag("federated_timeline_removal", True)
                applied.append("federated_timeline_removal")
                break

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1],
            reason="+".join(sorted(set(applied))),
            modified=True,
        )


class VocabularyPolicy(MRFPolicy):
    """Restrict activities to a configured set of activity types.

    The vocabulary is managed through :meth:`add_type`/:meth:`remove_type`,
    which bump the configuration version so compiled pipelines rebuild the
    plan's type gate on mutation.
    """

    name = "VocabularyPolicy"

    def __init__(
        self,
        accept: Iterable[str] = (),
        reject: Iterable[str] = (),
    ) -> None:
        self._accept_types = {t.capitalize() for t in accept}
        self._reject_types = {t.capitalize() for t in reject}

    @property
    def accept_types(self) -> frozenset[str]:
        """Return the accepted activity-type vocabulary."""
        return frozenset(self._accept_types)

    @property
    def reject_types(self) -> frozenset[str]:
        """Return the rejected activity-type names."""
        return frozenset(self._reject_types)

    def add_type(self, kind: str, type_name: str) -> None:
        """Add a type name to the ``"accept"`` or ``"reject"`` vocabulary."""
        self._type_set(kind).add(type_name.capitalize())
        self._bump_config_version()

    def remove_type(self, kind: str, type_name: str) -> bool:
        """Remove a type name; return ``True`` when it was configured."""
        types = self._type_set(kind)
        type_name = type_name.capitalize()
        if type_name in types:
            types.discard(type_name)
            self._bump_config_version()
            return True
        return False

    def _type_set(self, kind: str) -> set[str]:
        if kind == "accept":
            return self._accept_types
        if kind == "reject":
            return self._reject_types
        raise ValueError(f"unknown vocabulary kind: {kind!r}")

    def config(self) -> dict[str, Any]:
        """Return the configured vocabulary."""
        return {
            "accept": sorted(self._accept_types),
            "reject": sorted(self._reject_types),
        }

    def plan(self) -> DecisionPlan:
        """A pure type gate: only activities of a rejected (or non-accepted)
        type can ever be touched.  The acting set is computed over the
        finite :class:`~repro.activitypub.activities.ActivityType` alphabet,
        so an empty vocabulary compiles to a never-acting plan."""
        acting = {
            activity_type
            for activity_type in ActivityType
            if activity_type.value in self._reject_types
            or (
                self._accept_types
                and activity_type.value not in self._accept_types
            )
        }
        if not acting:
            return DecisionPlan(triggers=PolicyTriggers())
        return DecisionPlan(
            triggers=PolicyTriggers(
                activity_types=frozenset(acting), match_all=True
            )
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject activity types outside the configured vocabulary."""
        type_name = activity.activity_type.value
        if type_name in self._reject_types:
            return self.reject(
                activity,
                action="reject",
                reason=f"activity type {type_name} is rejected",
            )
        if self._accept_types and type_name not in self._accept_types:
            return self.reject(
                activity,
                action="reject",
                reason=f"activity type {type_name} is not in the accepted vocabulary",
            )
        return self.accept(activity)


class NormalizeMarkup(MRFPolicy):
    """Normalise the markup of incoming posts.

    Real Pleroma scrubs the HTML of remote posts to a safe subset; here we
    model that as stripping every markup tag, which preserves the textual
    content the Perspective scorer later analyses.
    """

    name = "NormalizeMarkup"

    def plan(self) -> DecisionPlan:
        """Only posts containing a ``<`` can carry markup to strip."""
        columns = shared_trigger_columns(("<",), anchored=False)
        return DecisionPlan(
            triggers=PolicyTriggers(content=ContentTrigger(columns=columns))
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Strip markup tags from the post content."""
        post = activity.post
        if post is None or "<" not in post.content:
            return self.accept(activity)
        cleaned = _TAG_RE.sub("", post.content)
        if cleaned == post.content:
            return self.accept(activity)
        rewritten = post.with_changes(content=cleaned)
        return self.accept(
            activity.with_post(rewritten),
            action="normalize",
            reason="markup stripped",
            modified=True,
        )


class NoEmptyPolicy(MRFPolicy):
    """Reject posts that carry neither text nor media."""

    name = "NoEmptyPolicy"

    def plan(self) -> DecisionPlan:
        """Emptiness is not a trigger the fast path can see: always run."""
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Drop posts with an empty body and no attachments."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        if post.content.strip() or post.has_media:
            return self.accept(activity)
        return self.reject(activity, action="reject", reason="empty post")


class NoPlaceholderTextPolicy(MRFPolicy):
    """Strip placeholder bodies from media-only posts."""

    name = "NoPlaceholderTextPolicy"

    def plan(self) -> DecisionPlan:
        """Only media-carrying posts can have a placeholder body stripped."""
        return DecisionPlan(triggers=PolicyTriggers(media_posts=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Clear placeholder bodies such as ``.`` on posts that carry media."""
        post = activity.post
        if post is None or not post.has_media:
            return self.accept(activity)
        if post.content.strip().lower() not in _PLACEHOLDER_BODIES:
            return self.accept(activity)
        rewritten = post.with_changes(content="")
        return self.accept(
            activity.with_post(rewritten),
            action="strip_placeholder",
            reason="placeholder body removed",
            modified=True,
        )
