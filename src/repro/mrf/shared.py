"""Shared decision services backing the MRF plan API.

Decision plans (see :class:`repro.mrf.base.DecisionPlan`) describe *what*
a policy's triggers and rewrites depend on; this module provides the shared
state that makes evaluating them cheap across an entire fediverse:

* :class:`TriggerColumns` — interned per-post hit columns for one content
  trigger term set, computed once per distinct post no matter how many
  receiving pipelines ask.  Token-shaped sets ride the compiled
  ``(token_count, hit_vector)`` corpus-column engine from
  :mod:`repro.perspective.matcher`; literal (substring) sets use an
  unanchored trie scan.  Columns are obtained through
  :func:`shared_trigger_columns` so every policy with the same term set
  shares one store; a policy that mutates its patterns bumps its
  ``config_version``, the owning pipeline recompiles, and the rebuilt plan
  keys a different (or freshly valid) column store — the column version
  stamp that keeps stale hit vectors out of decisions.
* :func:`mention_count_of` — interned distinct-mention counts, the
  arithmetic behind the Hellthread mention-count trigger.
* :func:`rewrite_ledger` — the rewrite ledger: one content-independent
  rewrite (e.g. the ObjectAge delist of a stale post) is applied once per
  (recipe, post) and the rewritten post is shared by every receiver it
  federates to.  This replaces the private module cache ObjectAgePolicy
  used to keep.

All caches key by ``id(post)`` and keep the original post referenced (so
an id can never be recycled while its entry lives), with amortised FIFO
eviction bounding long-lived engines.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable

from repro.fediverse.post import Post
from repro.perspective.matcher import CompiledLexiconMatcher, _trie_pattern

#: Entries kept per cache before amortised FIFO eviction kicks in.
_CACHE_LIMIT = 200_000

#: Characters a term may consist of to ride the token-anchored corpus
#: matcher (the tokeniser alphabet minus the apostrophe, which the scan
#: neutralises — see :meth:`TriggerColumns.hit`).
_TOKEN_TERM_RE = re.compile(r"[a-z0-9]+\Z")


class TriggerColumns:
    """Interned boolean hit columns for one content trigger term set.

    ``anchored=True`` compiles the terms into the corpus-column engine
    (token-boundary semantics: a term hits iff it appears as a whole
    token); ``anchored=False`` compiles an unanchored trie alternation
    over the literal terms (substring semantics, matching what
    ``re.search`` over a literal pattern would find).  ``with_subject``
    selects whether the scanned text includes the post subject line.

    Either way the column of a post is computed once and cached by post
    identity, so re-deliveries of the same post to other instances — the
    overwhelming majority of federation traffic — are one dict hit.
    """

    __slots__ = (
        "terms",
        "anchored",
        "with_subject",
        "ignorecase",
        "_matcher",
        "_pattern",
        "_cache",
    )

    def __init__(
        self,
        terms: frozenset[str],
        *,
        anchored: bool,
        with_subject: bool,
        ignorecase: bool = False,
    ) -> None:
        self.terms = terms
        self.anchored = anchored
        self.with_subject = with_subject
        #: ``True`` when the guarded policy matches case-insensitively (the
        #: KeywordPolicy's ``re.IGNORECASE``): over ASCII text, lowering is
        #: exactly Unicode-aware case-insensitivity, but characters like
        #: U+017F (long s) casefold into ASCII letters ``lower()`` never
        #: produces — so non-ASCII texts conservatively count as hits and
        #: the policy runs.
        self.ignorecase = ignorecase
        if anchored:
            #: Width-1 corpus columns: every term weighs 1.0 on the single
            #: "attribute"; a post's hit vector is its term-hit count.
            self._matcher = CompiledLexiconMatcher(
                {term: (1.0,) for term in terms}, 1
            )
            self._pattern = None
        else:
            self._matcher = None
            ordered = sorted(terms)
            self._pattern = (
                re.compile(_trie_pattern(ordered)) if ordered else None
            )
        self._cache: dict[int, tuple[Post, bool]] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def _text_of(self, post: Post) -> str:
        if self.with_subject:
            return f"{post.subject or ''} {post.content}"
        return post.content

    def _scan(self, post: Post) -> bool:
        text = self._text_of(post)
        if not text.isascii() and (self.ignorecase or self.anchored):
            # Conservative fallback, checked on the *raw* text (lowering
            # can map non-ASCII characters into ASCII — U+212A KELVIN SIGN
            # lowers to 'k'): ``lower()`` diverges from Unicode
            # case-insensitive matching (``ignorecase``), and a non-ASCII
            # neighbour lowering into the token alphabet destroys the
            # boundary an anchored scan relies on — so non-ASCII texts
            # always run the policy.  Plain ASCII-literal substring scans
            # are unaffected: ASCII characters lower 1:1, so the literal's
            # presence is preserved exactly.
            return True
        lowered = text.lower()
        if self._matcher is not None:
            # The hashtag alphabet ([A-Za-z0-9_]) and the token alphabet
            # ([a-z0-9']) disagree on the apostrophe: "#nsfw's" carries the
            # hashtag "nsfw" yet tokenises as "nsfw's".  Neutralising
            # apostrophes restores the boundary, and cannot hide a hit
            # because no anchored term contains one (see
            # shared_trigger_columns).
            if "'" in lowered:
                lowered = lowered.replace("'", " ")
            return self._matcher.hits(lowered) is not None
        if self._pattern is None:
            return False
        return self._pattern.search(lowered) is not None

    def hit(self, post: Post) -> bool:
        """Return (computing and interning once) the post's hit column."""
        cache = self._cache
        key = id(post)
        entry = cache.get(key)
        if entry is not None and entry[0] is post:
            return entry[1]
        if len(cache) >= _CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        hit = self._scan(post)
        cache[key] = (post, hit)
        return hit


#: (anchored, with_subject, ignorecase, terms) -> the shared column store.
_COLUMNS: dict[tuple[bool, bool, bool, frozenset[str]], TriggerColumns] = {}


def token_terms(terms: Iterable[str]) -> frozenset[str] | None:
    """Return ``terms`` as a token-anchored set, or ``None`` when unsafe.

    A term set rides the corpus-column engine only when every term is one
    plain token (lower-case letters and digits); anything else — phrases,
    underscores, regex fragments — needs substring semantics.
    """
    collected = frozenset(terms)
    if all(_TOKEN_TERM_RE.match(term) for term in collected):
        return collected
    return None


def shared_trigger_columns(
    terms: Iterable[str],
    *,
    anchored: bool,
    with_subject: bool = False,
    ignorecase: bool = False,
) -> TriggerColumns:
    """Return the shared :class:`TriggerColumns` for ``terms``.

    Policies with identical term sets (every HashtagPolicy running the
    default tag list, say) get the *same* store, so a federated post is
    scanned once for all of them.
    """
    key = (anchored, with_subject, ignorecase, frozenset(terms))
    columns = _COLUMNS.get(key)
    if columns is None:
        columns = TriggerColumns(
            key[3],
            anchored=anchored,
            with_subject=with_subject,
            ignorecase=ignorecase,
        )
        _COLUMNS[key] = columns
    return columns


# --------------------------------------------------------------------------- #
# Mention-count columns
# --------------------------------------------------------------------------- #
_MENTIONS: dict[int, tuple[Post, int]] = {}


def mention_count_of(post: Post) -> int:
    """Return (interning once) the distinct mention count of ``post``.

    The arithmetic behind the Hellthread mention-count trigger: the
    mention regex runs once per distinct post instead of once per
    (post, receiving pipeline) pair.
    """
    key = id(post)
    entry = _MENTIONS.get(key)
    if entry is not None and entry[0] is post:
        return entry[1]
    if len(_MENTIONS) >= _CACHE_LIMIT:
        _MENTIONS.pop(next(iter(_MENTIONS)))
    count = post.mention_count
    _MENTIONS[key] = (post, count)
    return count


# --------------------------------------------------------------------------- #
# The shared rewrite ledger
# --------------------------------------------------------------------------- #
#: recipe -> {id(post) -> (post, rewritten post)}.  Each distinct recipe
#: (e.g. an ObjectAge action tuple) gets one interned cache, so every policy
#: applying the same transformation shares rewritten copies across the whole
#: fediverse.
_REWRITES: dict[Any, dict[int, tuple[Post, Post]]] = {}


def rewrite_ledger(recipe: Any) -> dict[int, tuple[Post, Post]]:
    """Return the shared per-recipe ledger ``{id(post): (post, rewritten)}``.

    Policies resolve the ledger once when compiling their plan and probe it
    by post identity on the hot path; the original post is kept referenced
    so its id can never be recycled while the entry lives.  Callers must
    bound growth with :func:`ledger_room` before inserting.
    """
    ledger = _REWRITES.get(recipe)
    if ledger is None:
        ledger = {}
        _REWRITES[recipe] = ledger
    return ledger


def ledger_room(ledger: dict) -> None:
    """Amortised FIFO eviction keeping a ledger below the cache limit."""
    if len(ledger) >= _CACHE_LIMIT:
        ledger.pop(next(iter(ledger)))


#: Extra cache-clearing hooks registered by plan implementations (e.g. the
#: ObjectAge lean-decision caches living on interned slice outcomes).
_CLEARABLES: list[Callable[[], None]] = []


def on_clear(hook: Callable[[], None]) -> None:
    """Register a hook run by :func:`clear_shared_state`."""
    _CLEARABLES.append(hook)


def clear_shared_state() -> None:
    """Drop every shared cache (benchmarks use this to level the heap)."""
    for ledger in _REWRITES.values():
        ledger.clear()
    _MENTIONS.clear()
    for columns in _COLUMNS.values():
        columns._cache.clear()
    for hook in _CLEARABLES:
        hook()
