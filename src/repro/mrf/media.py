"""Media- and hashtag-related policies.

* ``StealEmojiPolicy`` — download ("steal") custom emoji from a whitelist of
  hosts (81 instances in Table 3).
* ``MediaProxyWarmingPolicy`` — pre-fetch media attachments so the local
  MediaProxy cache is primed (46 instances).
* ``HashtagPolicy`` — mark activities carrying configured hashtags as
  sensitive, remove them from the federated timeline, or reject them
  (62 instances; default sensitive tag: ``nsfw``).
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.identifiers import domain_matches
from repro.mrf.base import MRFContext, MRFDecision, MRFPolicy

_EMOJI_SHORTCODE_RE = re.compile(r":([a-z0-9_]+):")


class StealEmojiPolicy(MRFPolicy):
    """List of hosts to steal emojis from."""

    name = "StealEmojiPolicy"

    def __init__(
        self,
        hosts: Iterable[str] = (),
        rejected_shortcodes: Iterable[str] = (),
        size_limit: int = 50_000,
    ) -> None:
        self.hosts = {h.strip().lower() for h in hosts}
        self.rejected_shortcodes = {s.strip(": ").lower() for s in rejected_shortcodes}
        self.size_limit = size_limit
        #: shortcode -> origin host of every emoji stolen so far.
        self.stolen: dict[str, str] = {}

    def config(self) -> dict[str, Any]:
        """Return the configured host whitelist."""
        return {
            "hosts": sorted(self.hosts),
            "rejected_shortcodes": sorted(self.rejected_shortcodes),
            "size_limit": self.size_limit,
        }

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Record emoji shortcodes seen in posts from whitelisted hosts."""
        post = activity.post
        if post is None or not self.hosts:
            return self.accept(activity)
        origin = activity.origin_domain
        if not any(domain_matches(origin, host) for host in self.hosts):
            return self.accept(activity)
        new_codes = []
        for shortcode in _EMOJI_SHORTCODE_RE.findall(post.content.lower()):
            if shortcode in self.rejected_shortcodes or shortcode in self.stolen:
                continue
            self.stolen[shortcode] = origin
            new_codes.append(shortcode)
        if not new_codes:
            return self.accept(activity)
        return self.accept(
            activity,
            action="steal_emoji",
            reason=f"stole {len(new_codes)} emoji from {origin}",
        )


class MediaProxyWarmingPolicy(MRFPolicy):
    """Crawl attachments so the MediaProxy cache is primed.

    The policy never changes the activity; it records which attachment URLs
    would have been prefetched, which benchmarks use to measure overhead.
    """

    name = "MediaProxyWarmingPolicy"

    def __init__(self) -> None:
        self.prefetched: list[str] = []
        self._seen: set[str] = set()

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Record attachment URLs for prefetching."""
        post = activity.post
        if post is None or not post.has_media:
            return self.accept(activity)
        new_urls = [
            att.url for att in post.attachments if att.url not in self._seen
        ]
        for url in new_urls:
            self._seen.add(url)
            self.prefetched.append(url)
        if not new_urls:
            return self.accept(activity)
        return self.accept(
            activity,
            action="prefetch",
            reason=f"prefetched {len(new_urls)} attachments",
        )


class HashtagPolicy(MRFPolicy):
    """List of hashtags to mark activities as sensitive, de-list or reject."""

    name = "HashtagPolicy"

    def __init__(
        self,
        sensitive: Iterable[str] = ("nsfw",),
        federated_timeline_removal: Iterable[str] = (),
        reject: Iterable[str] = (),
    ) -> None:
        self.sensitive_tags = {t.lstrip("#").lower() for t in sensitive}
        self.ftl_removal_tags = {t.lstrip("#").lower() for t in federated_timeline_removal}
        self.reject_tags = {t.lstrip("#").lower() for t in reject}

    def config(self) -> dict[str, Any]:
        """Return the configured hashtag lists."""
        return {
            "sensitive": sorted(self.sensitive_tags),
            "federated_timeline_removal": sorted(self.ftl_removal_tags),
            "reject": sorted(self.reject_tags),
        }

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply the configured hashtag actions to the carried post."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        tags = set(post.hashtags) | {t.lower() for t in post.tags}
        if not tags:
            return self.accept(activity)

        if tags & self.reject_tags:
            matched = sorted(tags & self.reject_tags)
            return self.reject(
                activity,
                action="reject",
                reason=f"rejected hashtags: {', '.join(matched)}",
            )

        current = activity
        applied: list[str] = []
        if tags & self.sensitive_tags and not post.sensitive:
            post = post.with_changes(sensitive=True)
            current = current.with_post(post)
            applied.append("sensitive")
        if tags & self.ftl_removal_tags:
            current = current.with_flag("federated_timeline_removal", True)
            applied.append("federated_timeline_removal")

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1],
            reason="+".join(applied),
            modified=True,
        )
