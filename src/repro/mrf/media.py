"""Media- and hashtag-related policies.

* ``StealEmojiPolicy`` — download ("steal") custom emoji from a whitelist of
  hosts (81 instances in Table 3).
* ``MediaProxyWarmingPolicy`` — pre-fetch media attachments so the local
  MediaProxy cache is primed (46 instances).
* ``HashtagPolicy`` — mark activities carrying configured hashtags as
  sensitive, remove them from the federated timeline, or reject them
  (62 instances; default sensitive tag: ``nsfw``).
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.identifiers import domain_matches
from repro.mrf.base import (
    ContentTrigger,
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)
from repro.mrf.shared import shared_trigger_columns, token_terms

_EMOJI_SHORTCODE_RE = re.compile(r":([a-z0-9_]+):")


class StealEmojiPolicy(MRFPolicy):
    """List of hosts to steal emojis from."""

    name = "StealEmojiPolicy"

    def __init__(
        self,
        hosts: Iterable[str] = (),
        rejected_shortcodes: Iterable[str] = (),
        size_limit: int = 50_000,
    ) -> None:
        self.hosts = {h.strip().lower() for h in hosts}
        self.rejected_shortcodes = {s.strip(": ").lower() for s in rejected_shortcodes}
        self.size_limit = size_limit
        #: shortcode -> origin host of every emoji stolen so far.
        self.stolen: dict[str, str] = {}

    def add_host(self, host: str) -> None:
        """Whitelist another host (bumps the plan's configuration version)."""
        self.hosts.add(host.strip().lower())
        self._bump_config_version()

    def remove_host(self, host: str) -> bool:
        """Drop a host from the whitelist; return ``True`` when present."""
        host = host.strip().lower()
        if host in self.hosts:
            self.hosts.discard(host)
            self._bump_config_version()
            return True
        return False

    def config(self) -> dict[str, Any]:
        """Return the configured host whitelist."""
        return {
            "hosts": sorted(self.hosts),
            "rejected_shortcodes": sorted(self.rejected_shortcodes),
            "size_limit": self.size_limit,
        }

    def plan(self) -> DecisionPlan:
        """Only activities from whitelisted hosts are (statefully) scanned.

        The pass-through branch for non-matching origins is a strict no-op
        — the shortcode scan and the ``stolen`` bookkeeping only run once a
        host matched — so origin triggers are sound despite the policy
        being stateful.  Mutate the whitelist through
        :meth:`add_host`/:meth:`remove_host` (version-bumping); a direct
        ``hosts.add(...)`` needs the owning pipeline's
        ``invalidate_compiled`` afterwards.
        """
        if not self.hosts:
            return DecisionPlan(triggers=PolicyTriggers())
        from repro.fediverse.identifiers import normalise_domain

        exact = set()
        suffixes = []
        for host in self.hosts:
            if host.startswith("*."):
                suffixes.append(host[2:])
                continue
            try:
                exact.add(normalise_domain(host))
            except ValueError:
                # An unparsable host can never be skipped soundly; run always.
                return DecisionPlan(triggers=PolicyTriggers(match_all=True))
        return DecisionPlan(
            triggers=PolicyTriggers(domains=frozenset(exact), suffixes=tuple(suffixes))
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Record emoji shortcodes seen in posts from whitelisted hosts."""
        post = activity.post
        if post is None or not self.hosts:
            return self.accept(activity)
        origin = activity.origin_domain
        if not any(domain_matches(origin, host) for host in self.hosts):
            return self.accept(activity)
        new_codes = []
        for shortcode in _EMOJI_SHORTCODE_RE.findall(post.content.lower()):
            if shortcode in self.rejected_shortcodes or shortcode in self.stolen:
                continue
            self.stolen[shortcode] = origin
            new_codes.append(shortcode)
        if not new_codes:
            return self.accept(activity)
        return self.accept(
            activity,
            action="steal_emoji",
            reason=f"stole {len(new_codes)} emoji from {origin}",
        )


class MediaProxyWarmingPolicy(MRFPolicy):
    """Crawl attachments so the MediaProxy cache is primed.

    The policy never changes the activity; it records which attachment URLs
    would have been prefetched, which benchmarks use to measure overhead.
    """

    name = "MediaProxyWarmingPolicy"

    def __init__(self) -> None:
        self.prefetched: list[str] = []
        self._seen: set[str] = set()

    def plan(self) -> DecisionPlan:
        """Only media-carrying posts are prefetched (and counted).

        The policy is stateful, but its pass-through for media-less
        activities is a strict no-op, so the media trigger is sound.
        """
        return DecisionPlan(triggers=PolicyTriggers(media_posts=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Record attachment URLs for prefetching."""
        post = activity.post
        if post is None or not post.has_media:
            return self.accept(activity)
        new_urls = [
            att.url for att in post.attachments if att.url not in self._seen
        ]
        for url in new_urls:
            self._seen.add(url)
            self.prefetched.append(url)
        if not new_urls:
            return self.accept(activity)
        return self.accept(
            activity,
            action="prefetch",
            reason=f"prefetched {len(new_urls)} attachments",
        )


class HashtagPolicy(MRFPolicy):
    """List of hashtags to mark activities as sensitive, de-list or reject.

    Tag sets are managed through :meth:`add_tag` / :meth:`remove_tag`,
    which bump the configuration version so compiled pipelines rebuild the
    plan (and its interned content columns) on mutation.
    """

    name = "HashtagPolicy"

    #: The tag-set kinds understood by :meth:`add_tag`.
    KINDS = ("sensitive", "federated_timeline_removal", "reject")

    def __init__(
        self,
        sensitive: Iterable[str] = ("nsfw",),
        federated_timeline_removal: Iterable[str] = (),
        reject: Iterable[str] = (),
    ) -> None:
        self._sensitive = {t.lstrip("#").lower() for t in sensitive}
        self._ftl_removal = {t.lstrip("#").lower() for t in federated_timeline_removal}
        self._reject = {t.lstrip("#").lower() for t in reject}

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def sensitive_tags(self) -> frozenset[str]:
        """Return the tags forcing posts to sensitive."""
        return frozenset(self._sensitive)

    @property
    def ftl_removal_tags(self) -> frozenset[str]:
        """Return the tags removed from the federated timeline."""
        return frozenset(self._ftl_removal)

    @property
    def reject_tags(self) -> frozenset[str]:
        """Return the tags causing outright rejection."""
        return frozenset(self._reject)

    def add_tag(self, kind: str, tag: str) -> None:
        """Add a tag to one of the configured sets (see :attr:`KINDS`)."""
        self._tag_set(kind).add(tag.lstrip("#").lower())
        self._bump_config_version()

    def remove_tag(self, kind: str, tag: str) -> bool:
        """Remove a tag from a set; return ``True`` when it was configured."""
        tags = self._tag_set(kind)
        tag = tag.lstrip("#").lower()
        if tag in tags:
            tags.discard(tag)
            self._bump_config_version()
            return True
        return False

    def _tag_set(self, kind: str) -> set[str]:
        if kind == "sensitive":
            return self._sensitive
        if kind == "federated_timeline_removal":
            return self._ftl_removal
        if kind == "reject":
            return self._reject
        raise ValueError(f"unknown hashtag kind: {kind!r}")

    def config(self) -> dict[str, Any]:
        """Return the configured hashtag lists."""
        return {
            "sensitive": sorted(self._sensitive),
            "federated_timeline_removal": sorted(self._ftl_removal),
            "reject": sorted(self._reject),
        }

    # ------------------------------------------------------------------ #
    # The decision plan
    # ------------------------------------------------------------------ #
    def plan(self) -> DecisionPlan:
        """A hashtag trigger over the interned corpus columns.

        A post is touched only when one of the configured tags occurs in
        its content (scanned once per distinct post through the shared
        ``(token_count, hit_vector)`` column store) or in its explicit
        ``tags`` field (the per-activity residual the scan cannot see).
        Tag sets made of plain tokens ride the token-anchored corpus
        matcher; anything else falls back to a substring scan, which is
        strictly conservative for ``#tag`` occurrences.
        """
        terms = self._sensitive | self._ftl_removal | self._reject
        if not terms:
            return DecisionPlan(triggers=PolicyTriggers())
        anchored_terms = token_terms(terms)
        if anchored_terms is not None:
            columns = shared_trigger_columns(anchored_terms, anchored=True)
        else:
            columns = shared_trigger_columns(terms, anchored=False)
        return DecisionPlan(
            triggers=PolicyTriggers(
                content=ContentTrigger(columns=columns, tag_terms=frozenset(terms))
            )
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply the configured hashtag actions to the carried post."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        tags = set(post.hashtags) | {t.lower() for t in post.tags}
        if not tags:
            return self.accept(activity)

        if tags & self._reject:
            matched = sorted(tags & self._reject)
            return self.reject(
                activity,
                action="reject",
                reason=f"rejected hashtags: {', '.join(matched)}",
            )

        current = activity
        applied: list[str] = []
        if tags & self._sensitive and not post.sensitive:
            post = post.with_changes(sensitive=True)
            current = current.with_post(post)
            applied.append("sensitive")
        if tags & self._ftl_removal:
            current = current.with_flag("federated_timeline_removal", True)
            applied.append("federated_timeline_removal")

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1],
            reason="+".join(applied),
            modified=True,
        )
