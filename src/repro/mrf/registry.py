"""Registry of MRF policies: descriptions, factory and defaults.

The registry is the single place that knows the full catalogue of in-built
Pleroma policies (Table 3 of the paper plus the handful of in-built policies
only visible in Figure 7), the admin-created policies observed in the wild,
which policies ship enabled by default, and how to construct each by name.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mrf.allowlist import BlockPolicy, UserAllowListPolicy
from repro.mrf.base import MRFPolicy
from repro.mrf.bots import (
    AntiFollowbotPolicy,
    AntiLinkSpamPolicy,
    FollowBotPolicy,
    ForceBotUnlistedPolicy,
)
from repro.mrf.custom import OBSERVED_CUSTOM_POLICY_NAMES, CustomPolicy
from repro.mrf.keywords import (
    KeywordPolicy,
    NoEmptyPolicy,
    NoPlaceholderTextPolicy,
    NormalizeMarkup,
    VocabularyPolicy,
)
from repro.mrf.media import HashtagPolicy, MediaProxyWarmingPolicy, StealEmojiPolicy
from repro.mrf.noop import DropPolicy, NoOpPolicy
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.proposed import (
    PROPOSED_POLICY_NAMES,
    AutoTagPolicy,
    CuratedBlocklistPolicy,
    RepeatOffenderPolicy,
)
from repro.mrf.simple import SimplePolicy
from repro.mrf.subchain import SubchainPolicy
from repro.mrf.tag import TagPolicy
from repro.mrf.threads import AntiHellthreadPolicy, EnsureRePrepended, HellthreadPolicy
from repro.mrf.visibility import ActivityExpirationPolicy, MentionPolicy, RejectNonPublic

#: One-line descriptions of the in-built policies, following Table 3 of the
#: paper (plus the in-built policies that only appear in Figure 7).
BUILTIN_POLICY_DESCRIPTIONS: dict[str, str] = {
    "ObjectAgePolicy": "Rejects or delists posts based on their age when received",
    "TagPolicy": "Applies policies to individual users based on tags",
    "SimplePolicy": (
        "Restrict the visibility of activities from certain instances with a suite of actions"
    ),
    "NoOpPolicy": "Doesn't modify activities (default)",
    "HellthreadPolicy": (
        "De-list or reject messages when the set number of mentioned users threshold is exceeded"
    ),
    "StealEmojiPolicy": "List of hosts to steal emojis from",
    "HashtagPolicy": "List of hashtags to mark activities as sensitive (default: nsfw)",
    "AntiFollowbotPolicy": "Stop the automatic following of newly discovered users",
    "MediaProxyWarmingPolicy": (
        "Crawls attachments using their MediaProxy URLs so that the MediaProxy cache is primed"
    ),
    "KeywordPolicy": "A list of patterns which result in message being reject/unlisted/replaced",
    "AntiLinkSpamPolicy": (
        "Rejects posts from likely spambots by rejecting posts from new users that contain links"
    ),
    "ForceBotUnlistedPolicy": "Makes all bot posts to disappear from public timelines",
    "EnsureRePrepended": (
        "Rewrites posts to ensure that replies to posts with subjects do not have an identical "
        "subject and instead begin with re:"
    ),
    "ActivityExpirationPolicy": (
        "Sets a default expiration on all posts made by users of the local instance"
    ),
    "SubchainPolicy": "Selectively runs other MRF policies when messages match",
    "MentionPolicy": "Drops posts mentioning configurable users",
    "VocabularyPolicy": "Restricts activities to a configured set of vocabulary",
    "AntiHellthreadPolicy": "Stops the use of the HellthreadPolicy",
    "RejectNonPublic": "Whether to allow followers-only/direct posts",
    "FollowBotPolicy": "Automatically follows newly discovered users from the specified bot account",
    "DropPolicy": "Drops all activities",
    # In-built policies visible in Figure 7 but not listed in Table 3.
    "NormalizeMarkup": "Normalises the markup of incoming posts",
    "NoEmptyPolicy": "Rejects posts that carry neither text nor media",
    "NoPlaceholderTextPolicy": "Strips placeholder bodies from media-only posts",
    "UserAllowListPolicy": "Only allows listed actors from domains that have an allow-list",
    "BlockPolicy": "Drops activities from actors blocked locally",
}

#: Policies that ship enabled on fresh Pleroma installations (>= 2.1.0).
DEFAULT_POLICY_NAMES: tuple[str, ...] = ("ObjectAgePolicy", "NoOpPolicy")

_FACTORIES: dict[str, Callable[..., MRFPolicy]] = {
    "ObjectAgePolicy": ObjectAgePolicy,
    "TagPolicy": TagPolicy,
    "SimplePolicy": SimplePolicy,
    "NoOpPolicy": NoOpPolicy,
    "HellthreadPolicy": HellthreadPolicy,
    "StealEmojiPolicy": StealEmojiPolicy,
    "HashtagPolicy": HashtagPolicy,
    "AntiFollowbotPolicy": AntiFollowbotPolicy,
    "MediaProxyWarmingPolicy": MediaProxyWarmingPolicy,
    "KeywordPolicy": KeywordPolicy,
    "AntiLinkSpamPolicy": AntiLinkSpamPolicy,
    "ForceBotUnlistedPolicy": ForceBotUnlistedPolicy,
    "EnsureRePrepended": EnsureRePrepended,
    "ActivityExpirationPolicy": ActivityExpirationPolicy,
    "SubchainPolicy": SubchainPolicy,
    "MentionPolicy": MentionPolicy,
    "VocabularyPolicy": VocabularyPolicy,
    "AntiHellthreadPolicy": AntiHellthreadPolicy,
    "RejectNonPublic": RejectNonPublic,
    "FollowBotPolicy": FollowBotPolicy,
    "DropPolicy": DropPolicy,
    "NormalizeMarkup": NormalizeMarkup,
    "NoEmptyPolicy": NoEmptyPolicy,
    "NoPlaceholderTextPolicy": NoPlaceholderTextPolicy,
    "UserAllowListPolicy": UserAllowListPolicy,
    "BlockPolicy": BlockPolicy,
    # The Section 7 proposed policies: constructible by name, but reported
    # as neither in-built nor observed-in-the-wild (see proposed_policy_names).
    "CuratedBlocklistPolicy": CuratedBlocklistPolicy,
    "AutoTagPolicy": AutoTagPolicy,
    "RepeatOffenderPolicy": RepeatOffenderPolicy,
}


def builtin_policy_names() -> tuple[str, ...]:
    """Return the names of every in-built policy, in a stable order."""
    return tuple(BUILTIN_POLICY_DESCRIPTIONS)


def observed_custom_policy_names() -> tuple[str, ...]:
    """Return the names of admin-created policies observed in the wild."""
    return OBSERVED_CUSTOM_POLICY_NAMES


def proposed_policy_names() -> tuple[str, ...]:
    """Return the names of the Section 7 proposed policies."""
    return PROPOSED_POLICY_NAMES


def all_known_policy_names() -> tuple[str, ...]:
    """Return every policy name the study encounters (in-built + custom)."""
    return builtin_policy_names() + observed_custom_policy_names()


def is_builtin(name: str) -> bool:
    """Return ``True`` when ``name`` is one of the Pleroma in-built policies."""
    return name in BUILTIN_POLICY_DESCRIPTIONS


def describe_policy(name: str) -> str:
    """Return the one-line description of a policy name."""
    if name in BUILTIN_POLICY_DESCRIPTIONS:
        return BUILTIN_POLICY_DESCRIPTIONS[name]
    return "admin-created policy (behaviour unknown to the crawler)"


def create_policy(name: str, **kwargs: Any) -> MRFPolicy:
    """Construct a policy instance by name.

    In-built policies are created through their real implementations;
    unknown names produce a :class:`~repro.mrf.custom.CustomPolicy`
    placeholder, mirroring the limited view the crawler has of policies it
    only knows by name.
    """
    factory = _FACTORIES.get(name)
    if factory is not None:
        return factory(**kwargs)
    return CustomPolicy(name=name, **kwargs)


def default_policies() -> list[MRFPolicy]:
    """Return fresh instances of the policies enabled by default."""
    return [create_policy(name) for name in DEFAULT_POLICY_NAMES]
