"""Support for admin-created (custom) MRF policies.

The paper finds 46 distinct policy types in the wild, 20 of which are not
part of the Pleroma software package but written by instance administrators
(Figure 7 lists names such as ``RejectCloudflarePolicy`` or
``KanayaBlogProcessPolicy``).  Their exact behaviour is unknown to the
measurement — only the policy *name* is exposed through the instance API —
so the reproduction models them with :class:`CustomPolicy`: a named policy
whose behaviour can optionally be supplied as a callable but defaults to
pass-through, exactly matching what the crawler can observe.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.activitypub.activities import Activity
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)

#: Names of admin-created policies observed in the wild (Figure 7 of the
#: paper).  The crawler sees only these names; their code never leaves the
#: instance that defined them.
OBSERVED_CUSTOM_POLICY_NAMES: tuple[str, ...] = (
    "AMQPPolicy",
    "KanayaBlogProcessPolicy",
    "AntispamSandbox",
    "SupSlashX",
    "SupSlashPOL",
    "SupSlashMLP",
    "BlockNotification",
    "SupSlashG",
    "NoIncomingDeletes",
    "RewritePolicy",
    "RejectCloudflarePolicy",
    "RacismRemover",
    "CdnWarmingPolicy",
    "NotifyLocalUsersPolicy",
    "Bonzi",
    "EmojiReactionsAreRetarded",
    "Sogigi",
    "MindWarmingPolicy",
    "SupSlashB",
    "QuarantineNotePolicy",
)

#: A custom behaviour takes (activity, ctx) and returns either a rewritten
#: activity, ``None`` to reject, or the same activity to pass through.
CustomBehaviour = Callable[[Activity, MRFContext], Activity | None]


class CustomPolicy(MRFPolicy):
    """An admin-created policy known to the measurement only by name."""

    def __init__(
        self,
        name: str,
        behaviour: CustomBehaviour | None = None,
        description: str = "admin-created policy (behaviour unknown to the crawler)",
    ) -> None:
        if not name:
            raise ValueError("custom policies need a name")
        self.name = name
        self._behaviour = behaviour
        self.description = description

    @property
    def behaviour(self) -> CustomBehaviour | None:
        """Return the custom behaviour callable (``None`` = pass-through)."""
        return self._behaviour

    @behaviour.setter
    def behaviour(self, value: CustomBehaviour | None) -> None:
        # Assigning a behaviour invalidates the never-acts plan that
        # compiled pipelines may have baked in for the pass-through case.
        self._behaviour = value
        self._bump_config_version()

    def config(self) -> dict[str, Any]:
        """Return whatever is externally observable about the policy."""
        return {"description": self.description, "custom": True}

    def plan(self) -> DecisionPlan:
        """Behaviour-less placeholders never act; real behaviours run always.

        An arbitrary behaviour callable could touch anything, so the only
        sound triggers for it are ``match_all``.
        """
        if self.behaviour is None:
            return DecisionPlan(triggers=PolicyTriggers())
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Run the supplied behaviour, defaulting to pass-through."""
        if self.behaviour is None:
            return self.accept(activity)
        result = self.behaviour(activity, ctx)
        if result is None:
            return self.reject(activity, action="reject", reason="custom behaviour rejected")
        if result is activity:
            return self.accept(activity)
        return self.accept(result, action="rewrite", reason="custom behaviour rewrote", modified=True)
