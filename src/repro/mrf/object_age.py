"""``ObjectAgePolicy``: act on posts that are older than a threshold.

This is the most widely enabled policy in the paper (66.9% of instances,
Figure 1) because it ships enabled by default from Pleroma 2.1.0.  It guards
against instances replaying very old posts: when a post arrives whose age
exceeds the configured threshold, the policy can de-list it, strip its
follower recipients, or reject it entirely.

The policy is the canonical *content-independent rewrite*: whether it acts
depends only on the post's age, and what it does depends only on the post's
visibility — so its decision plan declares a
:class:`~repro.mrf.base.SharedRewrite` whose per-slice outcomes the compiled
pipeline can apply to a whole batch without running the policy at all.  The
rewritten post itself goes through the shared rewrite ledger
(:func:`repro.mrf.shared.rewrite_ledger`): the same stale post
federates to many receivers and the delisted/stripped copy is value-
identical each time, so one copy serves them all.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import Post, Visibility
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
    SharedRewrite,
    SliceOutcome,
    Verdict,
)
from repro.mrf.shared import ledger_room, on_clear, rewrite_ledger

#: The default age threshold (7 days), as shipped by Pleroma.
DEFAULT_THRESHOLD_SECONDS = 7 * SECONDS_PER_DAY

#: Actions supported by the policy, in the order they are applied.
VALID_ACTIONS = ("delist", "strip_followers", "reject")


def _build_rewriter(actions: tuple[str, ...], delist: bool, strip: bool):
    """Build the slice rewrites ``(activity-level, post-level)``.

    The rewrite is fused: instead of chaining
    ``with_changes``/``with_post``/``with_flag`` (each a full dataclass
    reconstruction), the final post and activity are built in one copy
    each.  The observable result is identical to the seed's chain — the
    perf harness keeps the chained version as its baseline and asserts
    equality at scale.  The post copy is shared through the rewrite ledger,
    keyed by the action tuple: every policy applying the same actions to
    the same post gets one rewritten copy between them.
    """

    ledger = rewrite_ledger(actions)

    def rewrite_post(post: Post) -> Post:
        entry = ledger.get(id(post))
        if entry is not None and entry[0] is post:
            return entry[1]
        ledger_room(ledger)
        new_post = object.__new__(type(post))
        new_post.__dict__.update(post.__dict__)
        new_post.extra = dict(post.extra)
        if delist:
            new_post.visibility = Visibility.UNLISTED
        if strip:
            new_post.extra["followers_stripped"] = True
        ledger[id(post)] = (post, new_post)
        return new_post

    def rewrite(activity: Activity, post: Post) -> Activity:
        new_post = rewrite_post(post)
        current = object.__new__(type(activity))
        current.__dict__.update(activity.__dict__)
        current.extra = dict(activity.extra)
        current.obj = new_post
        if strip:
            current.extra["followers_stripped"] = True
        return current

    return rewrite, rewrite_post


class ObjectAgePolicy(MRFPolicy):
    """Reject or delist posts based on their age when received."""

    name = "ObjectAgePolicy"

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD_SECONDS,
        actions: Iterable[str] = ("delist", "strip_followers"),
    ) -> None:
        self._actions: tuple[str, ...] = ()
        self.threshold = threshold
        self.actions = actions  # type: ignore[assignment]  # setter normalises

    @property
    def threshold(self) -> float:
        """Return the age threshold in seconds."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        if value <= 0:
            raise ValueError("threshold must be positive")
        self._threshold = float(value)
        self._compile_outcomes()
        self._bump_config_version()

    @property
    def actions(self) -> tuple[str, ...]:
        """Return the configured actions, in their configured order."""
        return self._actions

    @actions.setter
    def actions(self, value: Iterable[str]) -> None:
        actions = tuple(value)
        unknown = set(actions) - set(VALID_ACTIONS)
        if unknown:
            raise ValueError(f"unknown ObjectAgePolicy actions: {sorted(unknown)}")
        self._actions = actions
        self._reject_on_age = "reject" in actions
        self._delist = "delist" in actions
        self._strip = "strip_followers" in actions
        self._compile_outcomes()
        self._bump_config_version()

    def _compile_outcomes(self) -> None:
        """Precompute the per-slice outcomes of the shared rewrite.

        Slices are keyed by ``post.visibility is PUBLIC`` — the only
        content the decision depends on once the age trigger fired.  A
        missing slice means stale posts of that visibility pass untouched
        (delist-only configurations on non-public posts).  Outcome tables
        are interned by ``(name, threshold, actions)``: every policy with
        the same configuration (the default-install case: one per
        instance) shares one table, its rewrite ledgers and its lean
        decision caches.
        """
        if not self._actions:
            self._outcomes: dict[bool, SliceOutcome] = {}
            return
        key = (self.name, self._threshold, self._actions)
        cached = _OUTCOME_TABLES.get(key)
        if cached is not None:
            self._outcomes = cached
            return
        self._build_outcomes()
        if len(_OUTCOME_TABLES) >= 1000:
            _OUTCOME_TABLES.pop(next(iter(_OUTCOME_TABLES)))
        _OUTCOME_TABLES[key] = self._outcomes

    def _build_outcomes(self) -> None:
        if self._reject_on_age:
            reject = SliceOutcome(
                action="reject",
                reason=f"post older than {self._threshold:.0f}s",
                reject=True,
            )
            self._outcomes = {True: reject, False: reject}
            return
        outcomes: dict[bool, SliceOutcome] = {}
        delist, strip = self._delist, self._strip
        if delist:
            rewrite, rewrite_post = _build_rewriter(
                self._actions, delist=True, strip=strip
            )
            outcomes[True] = SliceOutcome(
                action="strip_followers" if strip else "delist",
                reason="delist+strip_followers" if strip else "delist",
                rewrite=rewrite,
                rewrite_post=rewrite_post,
                produces_visibility=Visibility.UNLISTED,
            )
        if strip:
            rewrite, rewrite_post = _build_rewriter(
                self._actions, delist=False, strip=True
            )
            strip_only = SliceOutcome(
                action="strip_followers",
                reason="strip_followers",
                rewrite=rewrite,
                rewrite_post=rewrite_post,
            )
            outcomes[False] = strip_only
            if not delist:
                outcomes[True] = strip_only
        self._outcomes = outcomes

    def config(self) -> dict[str, Any]:
        """Return the ``mrf_object_age`` configuration block."""
        return {"threshold": self.threshold, "actions": list(self.actions)}

    def plan(self) -> DecisionPlan:
        """Expose the age cutoff and the content-independent rewrite.

        Only posts older than the threshold are touched, and what happens
        to them depends on nothing but their visibility slice — the
        textbook shareable rewrite.
        """
        if not self._outcomes:
            return DecisionPlan(triggers=PolicyTriggers())
        return DecisionPlan(
            triggers=PolicyTriggers(max_post_age=self._threshold),
            shared_rewrite=SharedRewrite(
                age_threshold=self._threshold,
                slice_of=_slice_of,
                outcomes=self._outcomes,
            ),
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply the configured actions when the carried post is too old.

        The body is the plan's own outcome table applied to one activity,
        so the walked path and the batch-shared path can never drift apart.
        """
        post = activity.post
        if post is None:
            return self.accept(activity)
        if post.age(ctx.now) <= self._threshold:
            return self.accept(activity)

        outcome = self._outcomes.get(post.visibility is Visibility.PUBLIC)
        if outcome is None:
            return self.accept(activity)
        if outcome.reject:
            return self.reject(activity, action=outcome.action, reason=outcome.reason)
        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=outcome.rewrite(activity, post),
            policy=self.name,
            action=outcome.action,
            reason=outcome.reason,
            modified=True,
        )


def _slice_of(post: Post) -> bool:
    """The ObjectAge slice key: is the stale post publicly visible?"""
    return post.visibility is Visibility.PUBLIC


#: (policy name, threshold, actions) -> interned slice-outcome table.
_OUTCOME_TABLES: dict[tuple, dict[bool, SliceOutcome]] = {}


def _clear_lean_caches() -> None:
    for table in _OUTCOME_TABLES.values():
        for outcome in table.values():
            outcome.lean_cache.clear()


on_clear(_clear_lean_caches)
