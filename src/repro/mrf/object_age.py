"""``ObjectAgePolicy``: act on posts that are older than a threshold.

This is the most widely enabled policy in the paper (66.9% of instances,
Figure 1) because it ships enabled by default from Pleroma 2.1.0.  It guards
against instances replaying very old posts: when a post arrives whose age
exceeds the configured threshold, the policy can de-list it, strip its
follower recipients, or reject it entirely.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import Visibility
from repro.mrf.base import MRFContext, MRFDecision, MRFPolicy, PolicyPrecheck, Verdict

#: The default age threshold (7 days), as shipped by Pleroma.
DEFAULT_THRESHOLD_SECONDS = 7 * SECONDS_PER_DAY

#: Actions supported by the policy, in the order they are applied.
VALID_ACTIONS = ("delist", "strip_followers", "reject")

#: id(original post) -> (original post, actions, rewritten post).  The same
#: post federates to many receivers, and nearly every receiver runs the
#: default ObjectAge actions — the delisted/stripped rewrite is
#: value-identical each time, so one shared copy serves them all (posts are
#: treated as immutable throughout; every later rewrite copies).  The
#: original is kept referenced so its id cannot be recycled.
_REWRITE_CACHE: dict[int, tuple[Any, tuple, Any]] = {}


def clear_rewrite_cache() -> None:
    """Drop the shared rewrite cache (used by benchmarks to level the heap)."""
    _REWRITE_CACHE.clear()


class ObjectAgePolicy(MRFPolicy):
    """Reject or delist posts based on their age when received."""

    name = "ObjectAgePolicy"

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD_SECONDS,
        actions: Iterable[str] = ("delist", "strip_followers"),
    ) -> None:
        # (action, reason) per applied-combination, precomputed once.
        self._both_outcome = ("strip_followers", "delist+strip_followers")
        self._delist_outcome = ("delist", "delist")
        self._strip_outcome = ("strip_followers", "strip_followers")
        self.threshold = threshold
        self.actions = actions  # type: ignore[assignment]  # setter normalises

    @property
    def threshold(self) -> float:
        """Return the age threshold in seconds."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        if value <= 0:
            raise ValueError("threshold must be positive")
        self._threshold = float(value)
        self._bump_config_version()

    @property
    def actions(self) -> tuple[str, ...]:
        """Return the configured actions, in their configured order."""
        return self._actions

    @actions.setter
    def actions(self, value: Iterable[str]) -> None:
        actions = tuple(value)
        unknown = set(actions) - set(VALID_ACTIONS)
        if unknown:
            raise ValueError(f"unknown ObjectAgePolicy actions: {sorted(unknown)}")
        self._actions = actions
        self._reject_on_age = "reject" in actions
        self._delist = "delist" in actions
        self._strip = "strip_followers" in actions
        self._bump_config_version()

    def config(self) -> dict[str, Any]:
        """Return the ``mrf_object_age`` configuration block."""
        return {"threshold": self.threshold, "actions": list(self.actions)}

    def precheck(self) -> PolicyPrecheck:
        """Expose the age cutoff: only posts older than the threshold are touched."""
        return PolicyPrecheck(max_post_age=self.threshold)

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply the configured actions when the carried post is too old.

        The rewrite branch is fused: instead of chaining
        ``with_changes``/``with_post``/``with_flag`` (each a full dataclass
        reconstruction), the final post and activity are built in one copy
        each.  The observable result is identical to the seed's chain —
        the perf harness keeps the chained version as its baseline and
        asserts equality at scale.
        """
        post = activity.post
        if post is None:
            return self.accept(activity)
        if post.age(ctx.now) <= self._threshold:
            return self.accept(activity)

        if self._reject_on_age:
            return self.reject(
                activity,
                action="reject",
                reason=f"post older than {self._threshold:.0f}s",
            )

        delist = self._delist and post.visibility is Visibility.PUBLIC
        strip = self._strip
        if delist:
            action, reason = self._both_outcome if strip else self._delist_outcome
        elif strip:
            action, reason = self._strip_outcome
        else:
            return self.accept(activity)

        cached = _REWRITE_CACHE.get(id(post))
        if cached is not None and cached[0] is post and cached[1] == self._actions:
            new_post = cached[2]
        else:
            if len(_REWRITE_CACHE) >= 200_000:
                # Amortised FIFO eviction: long-lived engines stay bounded
                # without the recompute cliff of a wholesale clear.
                _REWRITE_CACHE.pop(next(iter(_REWRITE_CACHE)))
            new_post = object.__new__(type(post))
            new_post.__dict__.update(post.__dict__)
            new_post.extra = dict(post.extra)
            if delist:
                new_post.visibility = Visibility.UNLISTED
            if strip:
                new_post.extra["followers_stripped"] = True
            _REWRITE_CACHE[id(post)] = (post, self._actions, new_post)
        current = object.__new__(type(activity))
        current.__dict__.update(activity.__dict__)
        current.extra = dict(activity.extra)
        current.obj = new_post
        if strip:
            current.extra["followers_stripped"] = True
        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=current,
            policy=self.name,
            action=action,
            reason=reason,
            modified=True,
        )
