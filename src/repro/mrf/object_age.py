"""``ObjectAgePolicy``: act on posts that are older than a threshold.

This is the most widely enabled policy in the paper (66.9% of instances,
Figure 1) because it ships enabled by default from Pleroma 2.1.0.  It guards
against instances replaying very old posts: when a post arrives whose age
exceeds the configured threshold, the policy can de-list it, strip its
follower recipients, or reject it entirely.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import Visibility
from repro.mrf.base import MRFContext, MRFDecision, MRFPolicy

#: The default age threshold (7 days), as shipped by Pleroma.
DEFAULT_THRESHOLD_SECONDS = 7 * SECONDS_PER_DAY

#: Actions supported by the policy, in the order they are applied.
VALID_ACTIONS = ("delist", "strip_followers", "reject")


class ObjectAgePolicy(MRFPolicy):
    """Reject or delist posts based on their age when received."""

    name = "ObjectAgePolicy"

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD_SECONDS,
        actions: Iterable[str] = ("delist", "strip_followers"),
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        actions = tuple(actions)
        unknown = set(actions) - set(VALID_ACTIONS)
        if unknown:
            raise ValueError(f"unknown ObjectAgePolicy actions: {sorted(unknown)}")
        self.threshold = float(threshold)
        self.actions = actions

    def config(self) -> dict[str, Any]:
        """Return the ``mrf_object_age`` configuration block."""
        return {"threshold": self.threshold, "actions": list(self.actions)}

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Apply the configured actions when the carried post is too old."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        if post.age(ctx.now) <= self.threshold:
            return self.accept(activity)

        if "reject" in self.actions:
            return self.reject(
                activity,
                action="reject",
                reason=f"post older than {self.threshold:.0f}s",
            )

        current = activity
        applied = []
        if "delist" in self.actions and post.is_public:
            post = post.with_changes(visibility=Visibility.UNLISTED)
            current = current.with_post(post)
            applied.append("delist")
        if "strip_followers" in self.actions:
            current = current.with_flag("followers_stripped", True)
            applied.append("strip_followers")

        if not applied:
            return self.accept(current)
        return self.accept(
            current,
            action=applied[-1],
            reason="+".join(applied),
            modified=True,
        )
