"""The Section 7 strawman policies, implemented as real MRF policies.

The paper closes by *proposing* three moderation mechanisms that would avoid
most of the collateral damage it measures, and lists implementing them as
future work.  This module implements all three so they can be dropped into
an instance's MRF pipeline exactly like the in-built policies:

1. :class:`CuratedBlocklistPolicy` — generic policies backed by a
   curated/trusted list of well-known instances (the paper's "NoHate" /
   "NoPorn" lists), maintained by professionals and merely *subscribed to*
   by administrators.
2. :class:`AutoTagPolicy` — per-user moderation assisted by an automatic
   classifier: instead of blocking an instance, users whose recent content
   crosses a score threshold are individually tagged (NSFW, media-stripped,
   unlisted).
3. :class:`RepeatOffenderPolicy` — automatic escalation for repeated
   offenders: users accumulate strikes from classifier hits and incoming
   reports, and moderation actions escalate (tag → unlist → reject) as the
   strike count grows.

None of these are Pleroma in-built policies (``is_builtin`` stays false for
them); they are the reproduction's implementation of the paper's proposal,
evaluated against the measured collateral damage in the solutions
experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.identifiers import domain_matches, normalise_domain
from repro.fediverse.post import Visibility
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)
from repro.perspective.attributes import AttributeScores, HARMFUL_THRESHOLD
from repro.perspective.scorer import LexiconScorer

#: Names of the proposed (non-in-built) policies defined here.
PROPOSED_POLICY_NAMES: tuple[str, ...] = (
    "CuratedBlocklistPolicy",
    "AutoTagPolicy",
    "RepeatOffenderPolicy",
)

#: A classifier maps post text to attribute scores; the default is the
#: offline Perspective substitute.
Classifier = Callable[[str], AttributeScores]


# --------------------------------------------------------------------------- #
# 1. Curated block-lists
# --------------------------------------------------------------------------- #
class CuratedBlocklistPolicy(MRFPolicy):
    """Reject activities from instances on subscribed, curated lists.

    Administrators subscribe to named lists ("NoHate", "NoPorn", …) instead
    of maintaining their own ad-hoc reject lists; the lists themselves are
    maintained centrally so that they only contain instances whose blocking
    causes limited collateral damage.
    """

    name = "CuratedBlocklistPolicy"

    def __init__(
        self,
        lists: dict[str, Iterable[str]] | None = None,
        subscribed: Iterable[str] = (),
    ) -> None:
        self._lists: dict[str, set[str]] = {
            list_name: {domain.strip().lower() for domain in domains}
            for list_name, domains in (lists or {}).items()
        }
        self.subscribed: set[str] = set(subscribed)
        unknown = self.subscribed - set(self._lists)
        if unknown:
            raise ValueError(f"subscribed to unknown curated lists: {sorted(unknown)}")

    # -- list management ------------------------------------------------- #
    def publish_list(self, list_name: str, domains: Iterable[str]) -> None:
        """Create or replace a curated list (the maintainers' side)."""
        self._lists[list_name] = {domain.strip().lower() for domain in domains}
        self._bump_config_version()

    def subscribe(self, list_name: str) -> None:
        """Subscribe the instance to a curated list (the admin's side)."""
        if list_name not in self._lists:
            raise ValueError(f"unknown curated list: {list_name}")
        self.subscribed.add(list_name)
        self._bump_config_version()

    def unsubscribe(self, list_name: str) -> bool:
        """Unsubscribe from a list; return ``True`` when it was subscribed."""
        if list_name in self.subscribed:
            self.subscribed.discard(list_name)
            self._bump_config_version()
            return True
        return False

    def list_names(self) -> tuple[str, ...]:
        """Return the names of all published lists."""
        return tuple(sorted(self._lists))

    def blocked_domains(self) -> set[str]:
        """Return the union of all subscribed lists."""
        blocked: set[str] = set()
        for list_name in self.subscribed:
            blocked |= self._lists.get(list_name, set())
        return blocked

    def config(self) -> dict[str, Any]:
        """Return the subscribed lists and their contents."""
        return {
            "subscribed": sorted(self.subscribed),
            "lists": {name: sorted(domains) for name, domains in sorted(self._lists.items())},
        }

    # -- the decision plan ------------------------------------------------ #
    def _origin_reject(self, origin: str, local_domain: str) -> tuple[str, str] | None:
        """The origin-pure hook: the whole decision depends on the origin."""
        for list_name in sorted(self.subscribed):
            for pattern in self._lists.get(list_name, ()):
                if domain_matches(origin, pattern):
                    return (
                        "reject",
                        f"{origin} is on the curated {list_name!r} list",
                    )
        return None

    def plan(self) -> DecisionPlan:
        """Subscribed-list triggers plus the origin-pure shared reject.

        The policy rejects by origin alone and touches nothing else, so
        batched delivery can reject whole batches from listed origins with
        one shared decision.  ``subscribe``/``unsubscribe``/``publish_list``
        bump the configuration version, keeping compiled plans current.
        """
        exact: set[str] = set()
        suffixes: list[str] = []
        for domain in self.blocked_domains():
            if domain.startswith("*."):
                suffixes.append(domain[2:])
                continue
            try:
                exact.add(normalise_domain(domain))
            except ValueError:
                return DecisionPlan(
                    triggers=PolicyTriggers(match_all=True),
                    origin_pure=self._origin_reject,
                )
        return DecisionPlan(
            triggers=PolicyTriggers(
                domains=frozenset(exact), suffixes=tuple(suffixes)
            ),
            origin_pure=self._origin_reject,
        )

    # -- filtering -------------------------------------------------------- #
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject activities whose origin is on a subscribed list."""
        hit = self._origin_reject(activity.origin_domain, ctx.local_domain)
        if hit is not None:
            action, reason = hit
            return self.reject(activity, action=action, reason=reason)
        return self.accept(activity)


# --------------------------------------------------------------------------- #
# 2. Classifier-assisted per-user tagging
# --------------------------------------------------------------------------- #
@dataclass
class _UserHistory:
    """Rolling classifier history for one remote user."""

    scores: deque = field(default_factory=lambda: deque(maxlen=20))

    def mean_max_score(self) -> float:
        """Return the mean of the per-post maximum attribute scores."""
        if not self.scores:
            return 0.0
        return sum(self.scores) / len(self.scores)


class AutoTagPolicy(MRFPolicy):
    """Per-user moderation assisted by an automatic classifier.

    Every incoming post is scored; once a user's recent average crosses
    ``threshold`` (and at least ``min_posts`` posts have been seen), their
    subsequent posts are individually moderated — marked sensitive, stripped
    of media and removed from public timelines — while every other user on
    the same instance federates untouched.
    """

    name = "AutoTagPolicy"

    def __init__(
        self,
        classifier: Classifier | None = None,
        threshold: float = HARMFUL_THRESHOLD,
        min_posts: int = 3,
        strip_media: bool = True,
        force_unlisted: bool = True,
        history_length: int = 20,
    ) -> None:
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be within (0, 1]")
        if min_posts < 1:
            raise ValueError("min_posts must be at least 1")
        scorer = LexiconScorer()
        self.classifier = classifier or (lambda text: scorer.score(text))
        self.threshold = threshold
        self.min_posts = min_posts
        self.strip_media = strip_media
        self.force_unlisted = force_unlisted
        self.history_length = history_length
        self._history: dict[str, _UserHistory] = {}

    def config(self) -> dict[str, Any]:
        """Return the classifier thresholds."""
        return {
            "threshold": self.threshold,
            "min_posts": self.min_posts,
            "strip_media": self.strip_media,
            "force_unlisted": self.force_unlisted,
        }

    # -- introspection ---------------------------------------------------- #
    def flagged_users(self) -> tuple[str, ...]:
        """Return the handles currently above the tagging threshold."""
        return tuple(
            sorted(
                handle
                for handle, history in self._history.items()
                if len(history.scores) >= self.min_posts
                and history.mean_max_score() >= self.threshold
            )
        )

    def user_score(self, handle: str) -> float:
        """Return a user's current rolling mean score."""
        history = self._history.get(handle.lower())
        return history.mean_max_score() if history else 0.0

    def plan(self) -> DecisionPlan:
        """Stateful per-user history: every post must be scored."""
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    # -- filtering -------------------------------------------------------- #
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Score the post, update the author's history, tag when flagged."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        handle = activity.actor.handle.lower()
        history = self._history.setdefault(
            handle, _UserHistory(scores=deque(maxlen=self.history_length))
        )
        scores = self.classifier(post.content)
        history.scores.append(scores.max_score)

        flagged = (
            len(history.scores) >= self.min_posts
            and history.mean_max_score() >= self.threshold
        )
        if not flagged:
            return self.accept(activity)

        current = activity
        applied: list[str] = []
        if not post.sensitive:
            post = post.with_changes(sensitive=True)
            current = current.with_post(post)
            applied.append("force_nsfw")
        if self.strip_media and post.has_media:
            post = post.with_changes(attachments=())
            current = current.with_post(post)
            applied.append("strip_media")
        if self.force_unlisted and post.is_public:
            post = post.with_changes(visibility=Visibility.UNLISTED)
            current = current.with_post(post)
            applied.append("force_unlisted")
        current = current.with_flag("auto_tagged", True)
        applied.append("auto_tag")
        return self.accept(
            current,
            action=applied[-1],
            reason=f"{handle} flagged by classifier "
            f"(mean score {history.mean_max_score():.2f} >= {self.threshold})",
            modified=True,
        )


# --------------------------------------------------------------------------- #
# 3. Repeat-offender escalation
# --------------------------------------------------------------------------- #
class RepeatOffenderPolicy(MRFPolicy):
    """Escalate moderation actions against repeat offenders.

    Users accumulate *strikes*: one per post the classifier scores above
    ``score_threshold`` and one per incoming report (``Flag`` activity)
    against them.  Actions escalate with the strike count:

    * below ``tag_after`` strikes — nothing happens;
    * from ``tag_after`` strikes — posts are marked sensitive and unlisted;
    * from ``reject_after`` strikes — the user's posts are rejected outright.

    Only the offending user is ever affected; the instance and its other
    users keep federating normally.
    """

    name = "RepeatOffenderPolicy"

    def __init__(
        self,
        classifier: Classifier | None = None,
        score_threshold: float = HARMFUL_THRESHOLD,
        tag_after: int = 2,
        reject_after: int = 5,
    ) -> None:
        if tag_after < 1 or reject_after < 1:
            raise ValueError("strike thresholds must be positive")
        if reject_after <= tag_after:
            raise ValueError("reject_after must be greater than tag_after")
        scorer = LexiconScorer()
        self.classifier = classifier or (lambda text: scorer.score(text))
        self.score_threshold = score_threshold
        self.tag_after = tag_after
        self.reject_after = reject_after
        self._strikes: dict[str, int] = {}

    def config(self) -> dict[str, Any]:
        """Return the escalation thresholds."""
        return {
            "score_threshold": self.score_threshold,
            "tag_after": self.tag_after,
            "reject_after": self.reject_after,
        }

    # -- strike bookkeeping ------------------------------------------------ #
    def strikes(self, handle: str) -> int:
        """Return the current strike count of ``handle``."""
        return self._strikes.get(handle.lower().lstrip("@"), 0)

    def add_strike(self, handle: str, count: int = 1) -> int:
        """Add strikes manually (e.g. from an admin decision) and return the total."""
        handle = handle.lower().lstrip("@")
        self._strikes[handle] = self._strikes.get(handle, 0) + count
        return self._strikes[handle]

    def pardon(self, handle: str) -> None:
        """Reset a user's strike count."""
        self._strikes.pop(handle.lower().lstrip("@"), None)

    def offenders(self) -> dict[str, int]:
        """Return every user with at least one strike."""
        return dict(sorted(self._strikes.items()))

    def plan(self) -> DecisionPlan:
        """Stateful strike counters: every activity must be seen."""
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    # -- filtering ---------------------------------------------------------- #
    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Update strikes from the activity, then apply the escalation level."""
        if activity.is_flag and isinstance(activity.obj, dict):
            target = str(activity.obj.get("target", "")).lower().lstrip("@")
            if target:
                self.add_strike(target)
            return self.accept(activity, action="count_report", reason=f"report against {target}")

        post = activity.post
        if post is None:
            return self.accept(activity)

        handle = activity.actor.handle.lower()
        scores = self.classifier(post.content)
        if scores.max_score >= self.score_threshold:
            self.add_strike(handle)

        strikes = self.strikes(handle)
        if strikes >= self.reject_after:
            return self.reject(
                activity,
                action="reject_user",
                reason=f"{handle} has {strikes} strikes (>= {self.reject_after})",
            )
        if strikes >= self.tag_after:
            current = activity
            if not post.sensitive:
                post = post.with_changes(sensitive=True)
                current = current.with_post(post)
            if post.is_public:
                post = post.with_changes(visibility=Visibility.UNLISTED)
                current = current.with_post(post)
            current = current.with_flag("repeat_offender_tagged", True)
            return self.accept(
                current,
                action="tag_offender",
                reason=f"{handle} has {strikes} strikes (>= {self.tag_after})",
                modified=True,
            )
        return self.accept(activity)
