"""Trivial policies: ``NoOpPolicy`` and ``DropPolicy``.

``NoOpPolicy`` accepts everything unchanged; it is enabled by default on new
Pleroma installations (176 instances in Table 3 left it enabled).
``DropPolicy`` is the opposite extreme and silently drops every activity —
the paper observes it enabled on exactly one instance.
"""

from __future__ import annotations

from repro.activitypub.activities import Activity
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)


class NoOpPolicy(MRFPolicy):
    """Doesn't modify activities (the Pleroma default)."""

    name = "NoOpPolicy"

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Accept the activity untouched."""
        return self.accept(activity)

    def plan(self) -> DecisionPlan:
        """A no-op never acts: the pipeline may always skip it."""
        return DecisionPlan(triggers=PolicyTriggers())


class DropPolicy(MRFPolicy):
    """Drops all activities.

    Useful for instances that want to receive nothing at all; it effectively
    disables inbound federation while keeping the instance reachable.
    """

    name = "DropPolicy"

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject the activity unconditionally."""
        return self.reject(activity, action="drop", reason="DropPolicy rejects everything")

    def plan(self) -> DecisionPlan:
        """The ultimate origin-pure decision: everything is rejected."""
        return DecisionPlan(
            triggers=PolicyTriggers(match_all=True),
            origin_pure=self._origin_reject,
        )

    @staticmethod
    def _origin_reject(origin: str, local_domain: str) -> tuple[str, str]:
        return ("drop", "DropPolicy rejects everything")
