"""``SubchainPolicy``: selectively run other MRF policies.

Activities whose actor matches one of the configured patterns are run
through a nested chain of policies; everything else passes through.  The
paper observes this on 8 instances (Table 3).
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.mrf.base import (
    PASS_ACTION,
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
    Verdict,
)


class SubchainPolicy(MRFPolicy):
    """Selectively runs other MRF policies when messages match."""

    name = "SubchainPolicy"

    def __init__(
        self,
        match_actor: Iterable[str] = (),
        chain: Iterable[MRFPolicy] = (),
    ) -> None:
        self.match_patterns = [re.compile(p, re.IGNORECASE) for p in match_actor]
        self.chain = list(chain)

    def add_to_chain(self, policy: MRFPolicy) -> None:
        """Append ``policy`` to the nested chain."""
        self.chain.append(policy)
        self._bump_config_version()

    def plan(self) -> DecisionPlan:
        """Without a chain or patterns nothing can happen; otherwise the
        actor-regex match is opaque to the trigger vocabulary, so the
        policy runs on everything."""
        if not self.chain or not self.match_patterns:
            return DecisionPlan(triggers=PolicyTriggers())
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    def config(self) -> dict[str, Any]:
        """Return the matching patterns and the nested chain."""
        return {
            "match_actor": [p.pattern for p in self.match_patterns],
            "chain": [policy.name for policy in self.chain],
        }

    def _matches(self, activity: Activity) -> bool:
        """Return ``True`` when the actor matches a configured pattern."""
        candidates = (activity.actor.handle, activity.actor.uri)
        return any(
            pattern.search(candidate)
            for pattern in self.match_patterns
            for candidate in candidates
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Run matching activities through the nested policy chain."""
        if not self.chain or not self._matches(activity):
            return self.accept(activity)

        current = activity
        modified = False
        last_action = PASS_ACTION
        last_reason = ""
        for policy in self.chain:
            decision = policy.filter(current, ctx)
            if decision.rejected:
                return MRFDecision(
                    verdict=Verdict.REJECT,
                    activity=current,
                    policy=self.name,
                    action=decision.action,
                    reason=f"{policy.name}: {decision.reason}",
                )
            if decision.action != PASS_ACTION or decision.modified:
                modified = True
                last_action = decision.action
                last_reason = f"{policy.name}: {decision.reason}"
            current = decision.activity

        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=current,
            policy=self.name,
            action=last_action,
            reason=last_reason,
            modified=modified,
        )
