"""Bot- and spam-related policies.

* ``AntiFollowbotPolicy`` — reject follow requests coming from follow-bots
  (51 instances in Table 3).
* ``ForceBotUnlistedPolicy`` — make all bot posts disappear from public
  timelines (23 instances).
* ``AntiLinkSpamPolicy`` — reject link-bearing posts from brand-new accounts
  that look like spam bots (32 instances).
* ``FollowBotPolicy`` — automatically follow newly discovered users from a
  configured bot account (2 instances).
"""

from __future__ import annotations

from typing import Any

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.post import Visibility
from repro.mrf.base import (
    ContentTrigger,
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)
from repro.mrf.shared import shared_trigger_columns

#: Substrings in a username/display name that identify a follow bot.
_FOLLOWBOT_MARKERS = ("followbot", "follow_bot", "follow-bot")

#: Accounts younger than this (seconds) are considered "new" by the
#: anti-link-spam policy.
NEW_ACCOUNT_AGE_SECONDS = 30 * 24 * 3600.0


def looks_like_followbot(activity: Activity) -> bool:
    """Return ``True`` when the activity's actor looks like a follow bot."""
    actor = activity.actor
    haystacks = (actor.username.lower(), actor.display_name.lower())
    if actor.bot and any(
        marker in haystack for marker in _FOLLOWBOT_MARKERS for haystack in haystacks
    ):
        return True
    return any(
        marker in haystack for marker in _FOLLOWBOT_MARKERS for haystack in haystacks
    )


class AntiFollowbotPolicy(MRFPolicy):
    """Stop the automatic following of newly discovered users."""

    name = "AntiFollowbotPolicy"

    def plan(self) -> DecisionPlan:
        """The policy only ever acts on Follow requests."""
        return DecisionPlan(
            triggers=PolicyTriggers(
                activity_types=frozenset({ActivityType.FOLLOW}), match_all=True
            )
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject follow requests from accounts that look like follow bots."""
        if not activity.is_follow:
            return self.accept(activity)
        if looks_like_followbot(activity):
            return self.reject(
                activity,
                action="reject_follow",
                reason=f"{activity.actor.handle} looks like a follow bot",
            )
        return self.accept(activity)


class ForceBotUnlistedPolicy(MRFPolicy):
    """Make all bot posts disappear from public timelines."""

    name = "ForceBotUnlistedPolicy"

    def plan(self) -> DecisionPlan:
        """Only bot-authored posts can be forced unlisted."""
        return DecisionPlan(triggers=PolicyTriggers(bot_posts=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Force posts authored by bots to the unlisted visibility."""
        post = activity.post
        if post is None or not (post.is_bot or activity.actor.bot):
            return self.accept(activity)
        if not post.is_public:
            return self.accept(activity)
        unlisted = post.with_changes(visibility=Visibility.UNLISTED)
        current = activity.with_post(unlisted).with_flag(
            "federated_timeline_removal", True
        )
        return self.accept(
            current,
            action="force_unlisted",
            reason="bot post removed from public timelines",
            modified=True,
        )


class AntiLinkSpamPolicy(MRFPolicy):
    """Reject posts from likely spambots.

    A post is considered spam when it contains at least one link and its
    author is a freshly created account with no followers — the typical
    profile of a link-spam bot.
    """

    name = "AntiLinkSpamPolicy"

    def __init__(self, new_account_age: float = NEW_ACCOUNT_AGE_SECONDS) -> None:
        if new_account_age < 0:
            raise ValueError("new_account_age must be non-negative")
        self.new_account_age = float(new_account_age)

    def config(self) -> dict[str, Any]:
        """Return the account-age threshold."""
        return {"new_account_age": self.new_account_age}

    def plan(self) -> DecisionPlan:
        """Only link-bearing posts can be spam, and links require ``http``.

        The URL regex anchors on ``https?://``, so a post without the
        literal ``http`` in its content provably carries no links — a
        substring trigger served from the interned columns.
        """
        columns = shared_trigger_columns(("http",), anchored=False)
        return DecisionPlan(
            triggers=PolicyTriggers(content=ContentTrigger(columns=columns))
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject link-bearing posts from new, follower-less accounts."""
        post = activity.post
        if post is None or not post.links:
            return self.accept(activity)
        actor = activity.actor
        account_age = max(0.0, ctx.now - actor.created_at)
        if actor.follower_count == 0 and account_age <= self.new_account_age:
            return self.reject(
                activity,
                action="reject",
                reason=(
                    f"link post from new account {actor.handle} "
                    f"(age {account_age:.0f}s, 0 followers)"
                ),
            )
        return self.accept(activity)


class FollowBotPolicy(MRFPolicy):
    """Automatically follow newly discovered users from a bot account.

    The policy never modifies or rejects activities: it records follow
    intents which the owning instance can act on.  This mirrors how the real
    policy enqueues Follow activities out-of-band.
    """

    name = "FollowBotPolicy"

    def __init__(self, follower_nickname: str = "followbot") -> None:
        self.follower_nickname = follower_nickname
        self.pending_follows: list[str] = []
        self._seen_actors: set[str] = set()

    def config(self) -> dict[str, Any]:
        """Return the configured bot account."""
        return {"follower_nickname": self.follower_nickname}

    def plan(self) -> DecisionPlan:
        """Stateful on every post-carrying activity: must always run."""
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Record newly discovered remote authors as follow targets."""
        if activity.post is None:
            return self.accept(activity)
        handle = activity.actor.handle
        if activity.origin_domain != ctx.local_domain and handle not in self._seen_actors:
            self._seen_actors.add(handle)
            self.pending_follows.append(handle)
        return self.accept(activity)
