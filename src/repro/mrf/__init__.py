"""Pleroma's Message Rewrite Facility (MRF).

Every activity arriving at a Pleroma instance passes through an ordered
pipeline of *policies*.  A policy can accept the activity unchanged, rewrite
it (e.g. strip media, force NSFW, remove it from the federated timeline) or
reject it outright.  Administrators enable policies and configure which
remote instances they target; this is the moderation mechanism whose usage
the paper measures.

This package implements the policy pipeline, the in-built policies listed in
Table 3 of the paper (plus the in-built policies only visible in Figure 7)
and support for admin-created custom policies (the paper observes 20 of
those in the wild).
"""

from repro.mrf.allowlist import BlockPolicy, UserAllowListPolicy
from repro.mrf.base import (
    PASS_ACTION,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    ModerationEvent,
    PolicyPrecheck,
    PolicyStats,
    Verdict,
)
from repro.mrf.bots import (
    AntiFollowbotPolicy,
    AntiLinkSpamPolicy,
    FollowBotPolicy,
    ForceBotUnlistedPolicy,
)
from repro.mrf.custom import OBSERVED_CUSTOM_POLICY_NAMES, CustomPolicy
from repro.mrf.keywords import (
    KeywordPolicy,
    NoEmptyPolicy,
    NoPlaceholderTextPolicy,
    NormalizeMarkup,
    VocabularyPolicy,
)
from repro.mrf.media import HashtagPolicy, MediaProxyWarmingPolicy, StealEmojiPolicy
from repro.mrf.noop import DropPolicy, NoOpPolicy
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.pipeline import CompiledPipeline, MRFPipeline
from repro.mrf.proposed import (
    PROPOSED_POLICY_NAMES,
    AutoTagPolicy,
    CuratedBlocklistPolicy,
    RepeatOffenderPolicy,
)
from repro.mrf.registry import (
    BUILTIN_POLICY_DESCRIPTIONS,
    DEFAULT_POLICY_NAMES,
    all_known_policy_names,
    builtin_policy_names,
    create_policy,
    default_policies,
    describe_policy,
    is_builtin,
    observed_custom_policy_names,
    proposed_policy_names,
)
from repro.mrf.simple import SimplePolicy, SimplePolicyAction
from repro.mrf.subchain import SubchainPolicy
from repro.mrf.tag import TagAction, TagPolicy
from repro.mrf.threads import AntiHellthreadPolicy, EnsureRePrepended, HellthreadPolicy
from repro.mrf.visibility import ActivityExpirationPolicy, MentionPolicy, RejectNonPublic

__all__ = [
    "PASS_ACTION",
    "MRFContext",
    "MRFDecision",
    "MRFPolicy",
    "ModerationEvent",
    "PolicyStats",
    "Verdict",
    "MRFPipeline",
    "CompiledPipeline",
    "PolicyPrecheck",
    # Registry helpers
    "BUILTIN_POLICY_DESCRIPTIONS",
    "DEFAULT_POLICY_NAMES",
    "OBSERVED_CUSTOM_POLICY_NAMES",
    "PROPOSED_POLICY_NAMES",
    "all_known_policy_names",
    "builtin_policy_names",
    "create_policy",
    "default_policies",
    "describe_policy",
    "is_builtin",
    "observed_custom_policy_names",
    "proposed_policy_names",
    # Policies
    "ActivityExpirationPolicy",
    "AntiFollowbotPolicy",
    "AntiHellthreadPolicy",
    "AntiLinkSpamPolicy",
    "AutoTagPolicy",
    "BlockPolicy",
    "CuratedBlocklistPolicy",
    "CustomPolicy",
    "DropPolicy",
    "EnsureRePrepended",
    "FollowBotPolicy",
    "ForceBotUnlistedPolicy",
    "HashtagPolicy",
    "HellthreadPolicy",
    "KeywordPolicy",
    "MediaProxyWarmingPolicy",
    "MentionPolicy",
    "NoEmptyPolicy",
    "NoOpPolicy",
    "NoPlaceholderTextPolicy",
    "NormalizeMarkup",
    "ObjectAgePolicy",
    "RejectNonPublic",
    "RepeatOffenderPolicy",
    "SimplePolicy",
    "SimplePolicyAction",
    "StealEmojiPolicy",
    "SubchainPolicy",
    "TagAction",
    "TagPolicy",
    "UserAllowListPolicy",
    "VocabularyPolicy",
]
