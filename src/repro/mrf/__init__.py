"""Pleroma's Message Rewrite Facility (MRF).

Every activity arriving at a Pleroma instance passes through an ordered
pipeline of *policies*.  A policy can accept the activity unchanged, rewrite
it (e.g. strip media, force NSFW, remove it from the federated timeline) or
reject it outright.  Administrators enable policies and configure which
remote instances they target; this is the moderation mechanism whose usage
the paper measures.

This package implements the policy pipeline, the in-built policies listed in
Table 3 of the paper (plus the in-built policies only visible in Figure 7)
and support for admin-created custom policies (the paper observes 20 of
those in the wild).

How to author a policy
======================

Subclass :class:`~repro.mrf.base.MRFPolicy`, set ``name``, implement
``filter(activity, ctx) -> MRFDecision`` — and declare a decision plan by
implementing ``plan() -> DecisionPlan``.  The plan is what lets
:class:`~repro.mrf.pipeline.CompiledPipeline` keep your policy off the hot
path; a policy without one (``plan()`` returning ``None``) forces every
activity through the Python walk.

**Gates vs triggers.**  A plan's :class:`~repro.mrf.base.PolicyTriggers`
holds *gates* — ``activity_types``, ``local_origin_only`` — that are ANDed
(outside the gate the policy never acts), and *triggers* — origin domains
and suffixes, actor handles, a post-age cutoff, post visibilities, a
mention-count floor, media/bot/reply flags, interned content columns,
``match_all`` — that are ORed (inside the gate, the policy can only act
when at least one trigger fires).  Triggers must be *conservative*: they
may fire for an activity the policy would pass through, never stay silent
for one it would touch.  A trigger-less plan means "never acts" and the
pipeline drops the policy at compile time.

**The side-effect rule.**  Skipping a policy is only sound when its
pass-through is a strict no-op.  If your ``filter`` mutates state (counters,
caches, history) on a branch, every such branch must be covered by a
trigger — ``match_all`` in the worst case (see ``AutoTagPolicy``).  A
narrower trigger is fine when the side effect sits *behind* it: the
StealEmojiPolicy only mutates once a host matched, so its host triggers are
sound despite the policy being stateful.  State mutated on skipped
activities that no trigger covers is a correctness bug, not a slow path.

**When sharing is sound.**  Beyond triggers, a plan may declare two
stronger, *exact* properties:

* ``origin_pure`` — a hook returning the ``(action, reason)`` your filter
  applies to *every* activity from an origin before anything else (e.g. the
  SimplePolicy reject action).  Batched delivery then rejects whole
  single-origin batches with one shared decision.  Only sound when the
  check really depends on the origin alone and short-circuits ahead of all
  per-activity behaviour.
* ``shared_rewrite`` — a :class:`~repro.mrf.base.SharedRewrite` declaring
  that the rewrite is *content-independent* per batch slice: which posts
  are touched follows from the age selector alone, and what happens to
  them from a small slice key (e.g. the ObjectAge delist applying
  identically to every stale public post).  Unlike triggers these must be
  exact — the pipeline applies the declared outcome *without running your
  filter* — so never declare them for decisions that read anything the
  declaration doesn't.

**Non-Create traffic.**  Deliveries are not all post-shaped: boosts
(``Announce``), favourites (``Like``), Deletes, Follows and Flags carry an
object URI or a free-form payload, never a :class:`~repro.fediverse.post.Post`.
The pipeline compiles a dedicated batch program per ``(origin, type)`` for
type-homogeneous post-less batches (see
:meth:`~repro.mrf.pipeline.CompiledPipeline.program_for_type`), built from
:meth:`~repro.mrf.base.PolicyTriggers.may_touch_postless`: only the origin
and handle triggers (and the ``activity_types``/``local_origin_only``
gates) can fire for a post-less activity — every post-shaped trigger
(age, visibility, mentions, content, media/bot/reply flags) is provably a
no-op, so a plan whose triggers are all post-shaped drops out of the
Announce/Like walk entirely.  When authoring a policy that acts on
non-Create types, declare ``activity_types`` with the full set of types
any side-effectful branch handles (see ``AntiFollowbotPolicy`` for the
single-type shape); when your policy only ever reads ``activity.post``,
declare *no* ``activity_types`` gate — the post-less program builder
already proves you away, and an explicit ``{CREATE}`` gate would push the
common Create batches off the tighter ungated fast path for no gain
(which is why the shipped post-shaped policies stay ungated).
``origin_pure`` hooks remain exact for every type: an origin-level reject
fires before any payload is read, so single-origin Announce floods are
rejected with one shared decision.

Bump ``config_version`` (via ``self._bump_config_version()``) in every
mutating configuration method so compiled pipelines rebuild your plan; the
interned content columns behind ``PolicyTriggers.content`` are re-keyed by
the rebuilt plan, which is what keeps stale hit vectors out of decisions.
"""

from repro.mrf.allowlist import BlockPolicy, UserAllowListPolicy
from repro.mrf.base import (
    PASS_ACTION,
    ContentTrigger,
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    ModerationEvent,
    PolicyStats,
    PolicyTriggers,
    SharedRewrite,
    SliceOutcome,
    Verdict,
)
from repro.mrf.bots import (
    AntiFollowbotPolicy,
    AntiLinkSpamPolicy,
    FollowBotPolicy,
    ForceBotUnlistedPolicy,
)
from repro.mrf.custom import OBSERVED_CUSTOM_POLICY_NAMES, CustomPolicy
from repro.mrf.keywords import (
    KeywordPolicy,
    NoEmptyPolicy,
    NoPlaceholderTextPolicy,
    NormalizeMarkup,
    VocabularyPolicy,
)
from repro.mrf.media import HashtagPolicy, MediaProxyWarmingPolicy, StealEmojiPolicy
from repro.mrf.noop import DropPolicy, NoOpPolicy
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.pipeline import BatchProgram, CompiledPipeline, MRFPipeline
from repro.mrf.proposed import (
    PROPOSED_POLICY_NAMES,
    AutoTagPolicy,
    CuratedBlocklistPolicy,
    RepeatOffenderPolicy,
)
from repro.mrf.registry import (
    BUILTIN_POLICY_DESCRIPTIONS,
    DEFAULT_POLICY_NAMES,
    all_known_policy_names,
    builtin_policy_names,
    create_policy,
    default_policies,
    describe_policy,
    is_builtin,
    observed_custom_policy_names,
    proposed_policy_names,
)
from repro.mrf.simple import SimplePolicy, SimplePolicyAction
from repro.mrf.subchain import SubchainPolicy
from repro.mrf.tag import TagAction, TagPolicy
from repro.mrf.threads import AntiHellthreadPolicy, EnsureRePrepended, HellthreadPolicy
from repro.mrf.visibility import ActivityExpirationPolicy, MentionPolicy, RejectNonPublic

__all__ = [
    "PASS_ACTION",
    "MRFContext",
    "MRFDecision",
    "MRFPolicy",
    "ModerationEvent",
    "PolicyStats",
    "Verdict",
    "MRFPipeline",
    "CompiledPipeline",
    "BatchProgram",
    "ContentTrigger",
    "DecisionPlan",
    "PolicyTriggers",
    "SharedRewrite",
    "SliceOutcome",
    # Registry helpers
    "BUILTIN_POLICY_DESCRIPTIONS",
    "DEFAULT_POLICY_NAMES",
    "OBSERVED_CUSTOM_POLICY_NAMES",
    "PROPOSED_POLICY_NAMES",
    "all_known_policy_names",
    "builtin_policy_names",
    "create_policy",
    "default_policies",
    "describe_policy",
    "is_builtin",
    "observed_custom_policy_names",
    "proposed_policy_names",
    # Policies
    "ActivityExpirationPolicy",
    "AntiFollowbotPolicy",
    "AntiHellthreadPolicy",
    "AntiLinkSpamPolicy",
    "AutoTagPolicy",
    "BlockPolicy",
    "CuratedBlocklistPolicy",
    "CustomPolicy",
    "DropPolicy",
    "EnsureRePrepended",
    "FollowBotPolicy",
    "ForceBotUnlistedPolicy",
    "HashtagPolicy",
    "HellthreadPolicy",
    "KeywordPolicy",
    "MediaProxyWarmingPolicy",
    "MentionPolicy",
    "NoEmptyPolicy",
    "NoOpPolicy",
    "NoPlaceholderTextPolicy",
    "NormalizeMarkup",
    "ObjectAgePolicy",
    "RejectNonPublic",
    "RepeatOffenderPolicy",
    "SimplePolicy",
    "SimplePolicyAction",
    "StealEmojiPolicy",
    "SubchainPolicy",
    "TagAction",
    "TagPolicy",
    "UserAllowListPolicy",
    "VocabularyPolicy",
]
