"""Thread-related policies: ``HellthreadPolicy``, ``AntiHellthreadPolicy``
and ``EnsureRePrepended``.

A "hellthread" is a post that mentions a very large number of users, a
classic harassment vector on the fediverse: everyone mentioned receives a
notification.  ``HellthreadPolicy`` de-lists or rejects such posts based on
the number of mentions.  ``AntiHellthreadPolicy`` is the escape hatch the
paper lists in Table 3 ("stops the use of the HellthreadPolicy") — it marks
activities as exempt so that a later HellthreadPolicy in the pipeline leaves
them alone.  ``EnsureRePrepended`` is a cosmetic rewrite that prepends
``re:`` to reply subjects.
"""

from __future__ import annotations

from typing import Any

from repro.activitypub.activities import Activity
from repro.fediverse.post import Visibility
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)
from repro.mrf.shared import mention_count_of

#: Flag set by AntiHellthreadPolicy and honoured by HellthreadPolicy.
HELLTHREAD_EXEMPT_FLAG = "hellthread_exempt"


class HellthreadPolicy(MRFPolicy):
    """De-list or reject messages that mention too many users.

    ``delist_threshold`` and ``reject_threshold`` mirror Pleroma's
    configuration; a threshold of 0 disables that action.
    """

    name = "HellthreadPolicy"

    def __init__(self, delist_threshold: int = 10, reject_threshold: int = 20) -> None:
        if delist_threshold < 0 or reject_threshold < 0:
            raise ValueError("thresholds must be non-negative")
        self._delist_threshold = delist_threshold
        self._reject_threshold = reject_threshold

    # The thresholds are version-bumping properties so compiled pipelines
    # recompile when one is adjusted in place (the plan below bakes the
    # smallest enabled threshold into the fast-path mention trigger).
    @property
    def delist_threshold(self) -> int:
        """Mention count from which posts are de-listed (0 disables)."""
        return self._delist_threshold

    @delist_threshold.setter
    def delist_threshold(self, value: int) -> None:
        if value < 0:
            raise ValueError("thresholds must be non-negative")
        self._delist_threshold = value
        self._bump_config_version()

    @property
    def reject_threshold(self) -> int:
        """Mention count from which posts are rejected (0 disables)."""
        return self._reject_threshold

    @reject_threshold.setter
    def reject_threshold(self, value: int) -> None:
        if value < 0:
            raise ValueError("thresholds must be non-negative")
        self._reject_threshold = value
        self._bump_config_version()

    def config(self) -> dict[str, Any]:
        """Return the policy thresholds."""
        return {
            "delist_threshold": self.delist_threshold,
            "reject_threshold": self.reject_threshold,
        }

    def plan(self) -> DecisionPlan:
        """The mention-count trigger: only hellthread-sized posts are touched.

        The policy can only act on posts mentioning at least the smallest
        enabled threshold's worth of users — the overwhelming majority of
        federated posts mention nobody and skip the policy entirely, with
        the count served from the shared mention-count columns.  With both
        actions disabled the policy never acts.
        """
        enabled = [t for t in (self._delist_threshold, self._reject_threshold) if t]
        if not enabled:
            return DecisionPlan(triggers=PolicyTriggers())
        return DecisionPlan(triggers=PolicyTriggers(min_mentions=min(enabled)))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Check the mention count of the carried post against the thresholds."""
        post = activity.post
        if post is None:
            return self.accept(activity)
        if activity.extra.get(HELLTHREAD_EXEMPT_FLAG) or post.extra.get(
            HELLTHREAD_EXEMPT_FLAG
        ):
            return self.accept(activity)

        # The seed's per-call count: the *trigger* uses the shared columns
        # (see plan()), but the filter itself stays seed-faithful so the
        # equivalence baseline times the real per-activity work.
        mentions = post.mention_count
        if self.reject_threshold and mentions >= self.reject_threshold:
            return self.reject(
                activity,
                action="reject",
                reason=f"hellthread: {mentions} mentions >= {self.reject_threshold}",
            )
        if self.delist_threshold and mentions >= self.delist_threshold and post.is_public:
            delisted = post.with_changes(visibility=Visibility.UNLISTED)
            return self.accept(
                activity.with_post(delisted),
                action="delist",
                reason=f"hellthread: {mentions} mentions >= {self.delist_threshold}",
                modified=True,
            )
        return self.accept(activity)


class AntiHellthreadPolicy(MRFPolicy):
    """Exempt activities from HellthreadPolicy filtering.

    In the wild this policy is enabled by admins who disagree with upstream
    hellthread limits; it must run *before* HellthreadPolicy to take effect.
    """

    name = "AntiHellthreadPolicy"

    def plan(self) -> DecisionPlan:
        """Must see every post-carrying activity (it rewrites them all)."""
        return DecisionPlan(triggers=PolicyTriggers(match_all=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Mark the activity as exempt from hellthread filtering."""
        if activity.post is None:
            return self.accept(activity)
        exempted = activity.with_flag(HELLTHREAD_EXEMPT_FLAG, True)
        return self.accept(exempted, action="exempt", modified=True)


class EnsureRePrepended(MRFPolicy):
    """Rewrite reply subjects so they begin with ``re:``.

    The paper's Table 3 description: replies to posts with subjects should
    not carry an identical subject but instead begin with ``re:``.
    """

    name = "EnsureRePrepended"

    def plan(self) -> DecisionPlan:
        """Only replies that carry a subject line can be rewritten."""
        return DecisionPlan(triggers=PolicyTriggers(reply_with_subject=True))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Prepend ``re:`` to the subject of replies when missing."""
        post = activity.post
        if post is None or post.in_reply_to is None or not post.subject:
            return self.accept(activity)
        if post.subject.lower().startswith("re:"):
            return self.accept(activity)
        rewritten = post.with_changes(subject=f"re: {post.subject}")
        return self.accept(
            activity.with_post(rewritten),
            action="prepend_re",
            reason="reply subject rewritten",
            modified=True,
        )
