"""Allow-list and block-list policies.

* ``UserAllowListPolicy`` — per-instance allow-lists of actors: when an
  allow-list exists for an origin domain, only listed actors federate.
* ``BlockPolicy`` — honour user-level blocks at the instance border by
  dropping activities from blocked actors.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.activitypub.activities import Activity
from repro.fediverse.identifiers import normalise_domain
from repro.mrf.base import (
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)


class UserAllowListPolicy(MRFPolicy):
    """Only allow listed actors from domains that have an allow-list."""

    name = "UserAllowListPolicy"

    def __init__(self, allowed: dict[str, Iterable[str]] | None = None) -> None:
        # domain -> set of allowed handles
        self._allowed: dict[str, set[str]] = {}
        for domain, handles in (allowed or {}).items():
            for handle in handles:
                self.allow(domain, handle)

    def allow(self, domain: str, handle: str) -> None:
        """Add ``handle`` to the allow-list of ``domain``."""
        domain = normalise_domain(domain)
        self._allowed.setdefault(domain, set()).add(handle.lower().lstrip("@"))
        self._bump_config_version()

    def config(self) -> dict[str, Any]:
        """Return the per-domain allow-lists."""
        return {domain: sorted(handles) for domain, handles in sorted(self._allowed.items())}

    def plan(self) -> DecisionPlan:
        """Only origins that have an allow-list can see rejections."""
        return DecisionPlan(
            triggers=PolicyTriggers(domains=frozenset(self._allowed))
        )

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject activities from unlisted actors of allow-listed domains."""
        allow_list = self._allowed.get(activity.origin_domain)
        if not allow_list:
            return self.accept(activity)
        if activity.actor.handle.lower() in allow_list:
            return self.accept(activity)
        return self.reject(
            activity,
            action="reject",
            reason=(
                f"{activity.actor.handle} is not on the allow list "
                f"for {activity.origin_domain}"
            ),
        )


class BlockPolicy(MRFPolicy):
    """Drop activities from actors blocked by local users or the admin."""

    name = "BlockPolicy"

    def __init__(self, blocked_actors: Iterable[str] = ()) -> None:
        self._blocked = {a.lower().lstrip("@") for a in blocked_actors}

    def block(self, handle: str) -> None:
        """Add ``handle`` to the block list."""
        self._blocked.add(handle.lower().lstrip("@"))
        self._bump_config_version()

    def unblock(self, handle: str) -> bool:
        """Remove ``handle`` from the block list; return ``True`` when present."""
        handle = handle.lower().lstrip("@")
        if handle in self._blocked:
            self._blocked.discard(handle)
            self._bump_config_version()
            return True
        return False

    def config(self) -> dict[str, Any]:
        """Return the blocked handles."""
        return {"blocked": sorted(self._blocked)}

    def plan(self) -> DecisionPlan:
        """Only activities from blocked handles are touched."""
        return DecisionPlan(triggers=PolicyTriggers(handles=frozenset(self._blocked)))

    def filter(self, activity: Activity, ctx: MRFContext) -> MRFDecision:
        """Reject activities whose actor is blocked."""
        if activity.actor.handle.lower() in self._blocked:
            return self.reject(
                activity,
                action="reject",
                reason=f"{activity.actor.handle} is blocked",
            )
        return self.accept(activity)
