"""The ordered MRF policy pipeline run by each instance."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.activitypub.activities import Activity
from repro.fediverse.post import Post
from repro.mrf.base import (
    PASS_ACTION,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    ModerationEvent,
    PolicyPrecheck,
    Verdict,
)
from repro.mrf.simple import SimplePolicy as _SimplePolicy


class CompiledPipeline:
    """The precompiled fast-path table of one pipeline configuration.

    Per-policy prechecks (see :class:`~repro.mrf.base.PolicyPrecheck`) are
    merged into a single table: the exact-domain sets, wildcard suffixes and
    post-age cutoffs of all *plain* prechecks collapse into one membership
    test, while gated prechecks (type- or origin-restricted) are kept as a
    short list evaluated individually.  When every enabled policy exposes a
    precheck and none fires, the activity provably passes untouched and the
    policy loop (and its context construction) is skipped entirely.
    """

    __slots__ = (
        "entries",
        "versions",
        "fully_prechecked",
        "never_acts",
        "domains",
        "suffixes",
        "handles",
        "match_all",
        "min_post_age",
        "visibilities",
        "special",
        "head_simple",
    )

    def __init__(self, policies: Sequence[MRFPolicy]) -> None:
        entries: list[tuple[MRFPolicy, PolicyPrecheck | None]] = []
        domains: set[str] = set()
        suffixes: set[str] = set()
        handles: set[str] = set()
        visibilities: set = set()
        special: list[PolicyPrecheck] = []
        match_all = False
        min_post_age: float | None = None
        fully_prechecked = True
        for policy in policies:
            pre = policy.precheck()
            if pre is None:
                entries.append((policy, pre))
                fully_prechecked = False
                continue
            if (
                not pre.match_all
                and not pre.domains
                and not pre.suffixes
                and not pre.handles
                and not pre.post_visibilities
                and pre.max_post_age is None
            ):
                # The policy provably never acts (NoOpPolicy, an empty
                # TagPolicy, a behaviour-less CustomPolicy): drop it from the
                # walk entirely instead of re-skipping it per activity.
                continue
            entries.append((policy, pre))
            if pre.activity_types is not None or pre.local_origin_only:
                special.append(pre)
                continue
            if pre.match_all:
                match_all = True
            domains.update(pre.domains)
            suffixes.update(pre.suffixes)
            handles.update(pre.handles)
            visibilities.update(pre.post_visibilities)
            if pre.max_post_age is not None:
                if min_post_age is None or pre.max_post_age < min_post_age:
                    min_post_age = pre.max_post_age
        self.entries = tuple(entries)
        self.versions = tuple(policy.config_version for policy in policies)
        self.fully_prechecked = fully_prechecked
        self.domains = frozenset(domains)
        self.suffixes = tuple(suffixes)
        self.handles = frozenset(handles)
        self.match_all = match_all
        self.min_post_age = min_post_age
        self.visibilities = frozenset(visibilities)
        self.special = tuple(special)
        # With every (non-trivial) entry gone, no enabled policy can ever
        # act: the whole pipeline is a provable no-op and batches skip even
        # the per-activity membership checks.
        self.never_acts = fully_prechecked and not self.entries
        # When the first surviving entry is a SimplePolicy, its origin-pure
        # rejects (the reject action and the accept-list gate) short-circuit
        # the rest of the walk for every activity of that origin — the
        # batched delivery engine shares one such decision per batch.
        head = entries[0][0] if entries else None
        self.head_simple = head if isinstance(head, _SimplePolicy) else None

    def origin_may_trigger(self, origin: str) -> bool:
        """The origin-dependent half of :meth:`may_any_touch`.

        Batches share their origin, so callers evaluate this once per batch
        and only run the per-activity residual (handles/post-age/gated
        prechecks) in the loop.
        """
        if self.match_all:
            return True
        if origin in self.domains:
            return True
        for suffix in self.suffixes:
            if origin == suffix or origin.endswith("." + suffix):
                return True
        return False

    def residual_may_touch(
        self, activity: Activity, now: float, local_domain: str
    ) -> bool:
        """The per-activity half of :meth:`may_any_touch`."""
        if self.handles and activity.actor.handle.lower() in self.handles:
            return True
        if self.min_post_age is not None or self.visibilities:
            obj = activity.obj
            if obj.__class__ is Post:
                if (
                    self.min_post_age is not None
                    and now - obj.created_at > self.min_post_age
                ):
                    return True
                if self.visibilities and obj.visibility in self.visibilities:
                    return True
        for pre in self.special:
            if pre.may_touch(activity, now, local_domain):
                return True
        return False

    def batch_reject_for(self, origin: str, local_domain: str) -> tuple[str, str, str] | None:
        """Return the shared ``(policy, action, reason)`` rejecting every
        activity from ``origin``, or ``None``.

        Non-``None`` only when the head entry is a SimplePolicy whose
        origin-pure checks fire — those short-circuit before any other
        policy (or any per-activity state) can matter, so one decision is
        provably valid for a whole single-origin batch.
        """
        head = self.head_simple
        if head is None:
            return None
        hit = head.unconditional_reject(origin, local_domain)
        if hit is None:
            return None
        action, reason = hit
        return (head.name, action, reason)

    def may_any_touch(self, activity: Activity, now: float, local_domain: str) -> bool:
        """Return ``True`` when any enabled policy could act on ``activity``."""
        return self.origin_may_trigger(
            activity.origin_domain
        ) or self.residual_may_touch(activity, now, local_domain)


class MRFPipeline:
    """Run incoming activities through the enabled policies, in order.

    The pipeline short-circuits on the first rejection.  Rewrites compose:
    each policy receives the activity as (possibly) rewritten by the policies
    before it.  Every reject or rewrite is logged as a
    :class:`~repro.mrf.base.ModerationEvent`.

    Filtering runs through a precompiled fast path: per-policy prechecks are
    merged into a :class:`CompiledPipeline` so activities no policy can touch
    skip the Python loop entirely, and policies that provably cannot act on
    an activity are skipped inside the loop.  The uncompiled walk is kept as
    :meth:`filter_uncompiled`, the equivalence baseline.
    """

    def __init__(self, local_domain: str, local_instance: Any = None) -> None:
        self.local_domain = local_domain
        self.local_instance = local_instance
        self._policies: list[MRFPolicy] = []
        self._by_name: dict[str, MRFPolicy] = {}
        self._compiled: CompiledPipeline | None = None
        #: Bumped on every membership change (and explicit invalidation) so
        #: :meth:`config_fingerprint` can't mistake a replacement policy
        #: for the object it replaced.
        self._config_epoch = 0
        self.events: list[ModerationEvent] = []

    # ------------------------------------------------------------------ #
    # Policy management
    # ------------------------------------------------------------------ #
    @property
    def policies(self) -> list[MRFPolicy]:
        """Return the enabled policies in evaluation order."""
        return list(self._policies)

    @property
    def policy_names(self) -> list[str]:
        """Return the names of enabled policies in evaluation order."""
        return [policy.name for policy in self._policies]

    def add_policy(self, policy: MRFPolicy) -> None:
        """Enable a policy (appended at the end of the pipeline)."""
        if policy.name in self._by_name:
            raise ValueError(f"policy already enabled: {policy.name}")
        self._policies.append(policy)
        self._by_name[policy.name] = policy
        self._compiled = None
        self._config_epoch += 1

    def remove_policy(self, name: str) -> bool:
        """Disable the policy called ``name``; return ``True`` if it existed."""
        policy = self._by_name.pop(name, None)
        if policy is None:
            return False
        self._policies.remove(policy)
        self._compiled = None
        self._config_epoch += 1
        return True

    def has_policy(self, name: str) -> bool:
        """Return ``True`` when a policy with that name is enabled."""
        return name in self._by_name

    def get_policy(self, name: str) -> MRFPolicy | None:
        """Return the enabled policy called ``name``, or ``None``."""
        return self._by_name.get(name)

    # ------------------------------------------------------------------ #
    # Precompilation
    # ------------------------------------------------------------------ #
    def compiled(self) -> CompiledPipeline:
        """Return the compiled fast-path table, rebuilding it when stale."""
        compiled = self._compiled
        if compiled is not None:
            for policy, version in zip(self._policies, compiled.versions):
                if policy.config_version != version:
                    compiled = None
                    break
        if compiled is None:
            compiled = CompiledPipeline(self._policies)
            self._compiled = compiled
        return compiled

    def invalidate_compiled(self) -> None:
        """Force a recompile (needed after mutating a policy in place
        without going through a version-bumping configuration method).
        Also invalidates cached metadata payloads derived from
        :meth:`config_fingerprint`."""
        self._compiled = None
        self._config_epoch += 1

    def config_fingerprint(self) -> tuple:
        """Return a cheap fingerprint of the exposed MRF configuration.

        The API server's batch engine caches each instance's metadata
        payload against this fingerprint, so it must change whenever the
        payload's ``federation`` block could: a policy is added or removed
        (or the pipeline is explicitly invalidated) — tracked by the
        pipeline's membership epoch — or an enabled policy bumps its
        :attr:`~repro.mrf.base.MRFPolicy.config_version` through a mutating
        configuration method.  Like the compiled fast-path table, in-place
        mutations that bypass the version-bumping mutators are not
        detected (call :meth:`invalidate_compiled` after such a mutation).
        """
        return (
            self._config_epoch,
            tuple(policy.config_version for policy in self._policies),
        )

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def filter(self, activity: Activity, now: float) -> MRFDecision:
        """Run ``activity`` through the pipeline and return the final decision."""
        compiled = self.compiled()
        if compiled.fully_prechecked and not compiled.may_any_touch(
            activity, now, self.local_domain
        ):
            return MRFDecision(verdict=Verdict.ACCEPT, activity=activity)
        ctx = MRFContext(
            local_domain=self.local_domain,
            now=now,
            local_instance=self.local_instance,
        )
        decision = self._run(activity, ctx, compiled)
        if decision is None:
            return MRFDecision(verdict=Verdict.ACCEPT, activity=activity)
        return decision

    def filter_batch(
        self, activities: Iterable[Activity], now: float
    ) -> list[MRFDecision]:
        """Filter several activities, reusing one context and one compile.

        Equivalent to calling :meth:`filter` per activity (the clock does
        not advance within a batch), but the compiled table is validated
        once and the :class:`~repro.mrf.base.MRFContext` is built at most
        once per batch instead of once per activity.
        """
        activities = list(activities)
        return [
            decision
            if decision is not None
            else MRFDecision(verdict=Verdict.ACCEPT, activity=activity)
            for activity, decision in zip(activities, self.filter_batch_lazy(activities, now))
        ]

    def filter_batch_lazy(
        self, activities: Iterable[Activity], now: float
    ) -> list[MRFDecision | None]:
        """Like :meth:`filter_batch`, but untouched activities yield ``None``.

        ``None`` stands for the trivial accept decision — the caller can
        treat the activity itself as the filtered result without paying for
        a decision object.  This is the engine's hot path: at scale, most
        activities are untouched.
        """
        compiled = self.compiled()
        local_domain = self.local_domain
        if not isinstance(activities, (list, tuple)):
            activities = list(activities)
        if compiled.never_acts:
            return [None] * len(activities)
        fast = compiled.fully_prechecked
        # A fully-prechecked single-entry pipeline needs no policy walk: the
        # merged table firing already identifies the one policy to run.
        single = fast and len(compiled.entries) == 1
        single_policy = compiled.entries[0][0] if single else None
        # The origin-dependent half of the merged table is evaluated once per
        # distinct origin in the batch (usually exactly one); the residual
        # per-activity triggers are inlined with hoisted locals.
        origin_triggers: dict[str, bool] = {}
        origin_may_trigger = compiled.origin_may_trigger
        handles = compiled.handles
        min_post_age = compiled.min_post_age
        visibilities = compiled.visibilities
        special = compiled.special
        residual = compiled.residual_may_touch
        plain_residual = not handles and not special
        content_blind = min_post_age is None and not visibilities
        ctx: MRFContext | None = None
        decisions: list[MRFDecision | None] = []
        append = decisions.append
        for activity in activities:
            if fast:
                origin = activity.origin_domain
                triggered = origin_triggers.get(origin)
                if triggered is None:
                    triggered = origin_may_trigger(origin)
                    origin_triggers[origin] = triggered
                if not triggered:
                    if plain_residual:
                        if content_blind:
                            append(None)
                            continue
                        obj = activity.obj
                        if obj.__class__ is not Post or not (
                            (
                                min_post_age is not None
                                and now - obj.created_at > min_post_age
                            )
                            or (visibilities and obj.visibility in visibilities)
                        ):
                            append(None)
                            continue
                    elif not residual(activity, now, local_domain):
                        append(None)
                        continue
            if ctx is None:
                ctx = MRFContext(
                    local_domain=local_domain,
                    now=now,
                    local_instance=self.local_instance,
                )
            if single:
                append(self._run_single(activity, ctx, single_policy))
            else:
                append(self._run(activity, ctx, compiled))
        return decisions

    def batch_reject(
        self, activities: Sequence[Activity], origin: str, now: float
    ) -> tuple[str, str, str] | None:
        """Shared-decision fast path for a single-origin batch.

        When the head SimplePolicy rejects everything from ``origin``
        unconditionally, log one :class:`~repro.mrf.base.ModerationEvent`
        per activity — exactly what running :meth:`filter` per activity
        would have recorded — and return the shared
        ``(policy, action, reason)``; the caller then skips the
        per-activity filtering loop entirely.  ``None`` means no shared
        decision applies and the batch must be filtered normally.
        """
        shared = self.compiled().batch_reject_for(origin, self.local_domain)
        if shared is None:
            return None
        policy, action, reason = shared
        local_domain = self.local_domain
        append = self.events.append
        for activity in activities:
            event = object.__new__(ModerationEvent)
            event.__dict__.update(
                timestamp=now,
                moderating_domain=local_domain,
                origin_domain=origin,
                policy=policy,
                action=action,
                activity_type=activity.activity_type.value,
                activity_id=activity.activity_id,
                accepted=False,
                reason=reason,
            )
            append(event)
        return shared

    def _run(
        self, activity: Activity, ctx: MRFContext, compiled: CompiledPipeline
    ) -> MRFDecision | None:
        """The policy walk, skipping policies that provably cannot act.

        Returns ``None`` when no policy touched the activity (the trivial
        accept) so hot callers can skip the decision object entirely.
        """
        current = activity
        acting: MRFDecision | None = None
        now = ctx.now
        local_domain = ctx.local_domain

        for policy, pre in compiled.entries:
            if pre is not None and not pre.may_touch(current, now, local_domain):
                continue
            decision = policy.filter(current, ctx)
            if decision.rejected:
                self._log(decision, ctx, activity)
                return decision
            if decision.action != PASS_ACTION or decision.modified:
                acting = decision
                self._log(decision, ctx, activity)
            current = decision.activity

        if acting is None:
            return None if current is activity else MRFDecision(
                verdict=Verdict.ACCEPT, activity=current
            )
        # The final decision aggregates the last acting policy's fields with
        # modified=True; when that policy's own decision already carries them
        # (the overwhelmingly common single-rewriter case), reuse it.
        if acting.modified and acting.activity is current:
            return acting
        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=current,
            policy=acting.policy,
            action=acting.action,
            reason=acting.reason,
            modified=True,
        )

    def _run_single(
        self, activity: Activity, ctx: MRFContext, policy: MRFPolicy
    ) -> MRFDecision | None:
        """:meth:`_run` specialised for a one-entry compiled pipeline whose
        merged precheck already fired — the policy runs unconditionally."""
        decision = policy.filter(activity, ctx)
        if decision.rejected:
            self._log(decision, ctx, activity)
            return decision
        if decision.action != PASS_ACTION or decision.modified:
            self._log(decision, ctx, activity)
            if decision.modified:
                return decision
            return MRFDecision(
                verdict=Verdict.ACCEPT,
                activity=decision.activity,
                policy=decision.policy,
                action=decision.action,
                reason=decision.reason,
                modified=True,
            )
        current = decision.activity
        if current is activity:
            return None
        return MRFDecision(verdict=Verdict.ACCEPT, activity=current)

    def filter_uncompiled(self, activity: Activity, now: float) -> MRFDecision:
        """The seed's uncompiled policy walk, kept as the equivalence baseline.

        Behaviourally identical to :meth:`filter`; every policy runs
        unconditionally.  Equivalence tests and the perf harness compare the
        two paths.
        """
        ctx = MRFContext(
            local_domain=self.local_domain,
            now=now,
            local_instance=self.local_instance,
        )
        current = activity
        modified = False
        last_policy = ""
        last_action = PASS_ACTION
        last_reason = ""

        for policy in self._policies:
            decision = policy.filter(current, ctx)
            if decision.rejected:
                self._log(decision, ctx, activity)
                return decision
            if decision.action != PASS_ACTION or decision.modified:
                modified = True
                last_policy = decision.policy
                last_action = decision.action
                last_reason = decision.reason
                self._log(decision, ctx, activity)
            current = decision.activity

        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=current,
            policy=last_policy,
            action=last_action,
            reason=last_reason,
            modified=modified,
        )

    def _log(self, decision: MRFDecision, ctx: MRFContext, original: Activity) -> None:
        # Hot path: built via __new__/__dict__ to skip the frozen-dataclass
        # per-field object.__setattr__ walk; the event is identical to one
        # built through the constructor (and still immutable to callers).
        event = object.__new__(ModerationEvent)
        event.__dict__.update(
            timestamp=ctx.now,
            moderating_domain=self.local_domain,
            origin_domain=original.origin_domain,
            policy=decision.policy,
            action=decision.action,
            activity_type=original.activity_type.value,
            activity_id=original.activity_id,
            accepted=decision.accepted,
            reason=decision.reason,
        )
        self.events.append(event)

    # ------------------------------------------------------------------ #
    # Configuration exposure (as used by the Pleroma instance API)
    # ------------------------------------------------------------------ #
    def simple_policy_config(self) -> dict[str, list[str]]:
        """Return the SimplePolicy configuration (action -> target domains)."""
        policy = self.get_policy("SimplePolicy")
        if policy is None:
            return {}
        return policy.config()  # type: ignore[return-value]

    def object_age_config(self) -> dict[str, Any]:
        """Return the ObjectAgePolicy configuration, if enabled."""
        policy = self.get_policy("ObjectAgePolicy")
        if policy is None:
            return {}
        return policy.config()

    def describe(self) -> list[dict[str, Any]]:
        """Return the full pipeline configuration."""
        return [policy.describe() for policy in self._policies]
