"""The ordered MRF policy pipeline run by each instance."""

from __future__ import annotations

from typing import Any

from repro.activitypub.activities import Activity
from repro.mrf.base import (
    PASS_ACTION,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    ModerationEvent,
    Verdict,
)


class MRFPipeline:
    """Run incoming activities through the enabled policies, in order.

    The pipeline short-circuits on the first rejection.  Rewrites compose:
    each policy receives the activity as (possibly) rewritten by the policies
    before it.  Every reject or rewrite is logged as a
    :class:`~repro.mrf.base.ModerationEvent`.
    """

    def __init__(self, local_domain: str, local_instance: Any = None) -> None:
        self.local_domain = local_domain
        self.local_instance = local_instance
        self._policies: list[MRFPolicy] = []
        self._by_name: dict[str, MRFPolicy] = {}
        self.events: list[ModerationEvent] = []

    # ------------------------------------------------------------------ #
    # Policy management
    # ------------------------------------------------------------------ #
    @property
    def policies(self) -> list[MRFPolicy]:
        """Return the enabled policies in evaluation order."""
        return list(self._policies)

    @property
    def policy_names(self) -> list[str]:
        """Return the names of enabled policies in evaluation order."""
        return [policy.name for policy in self._policies]

    def add_policy(self, policy: MRFPolicy) -> None:
        """Enable a policy (appended at the end of the pipeline)."""
        if policy.name in self._by_name:
            raise ValueError(f"policy already enabled: {policy.name}")
        self._policies.append(policy)
        self._by_name[policy.name] = policy

    def remove_policy(self, name: str) -> bool:
        """Disable the policy called ``name``; return ``True`` if it existed."""
        policy = self._by_name.pop(name, None)
        if policy is None:
            return False
        self._policies.remove(policy)
        return True

    def has_policy(self, name: str) -> bool:
        """Return ``True`` when a policy with that name is enabled."""
        return name in self._by_name

    def get_policy(self, name: str) -> MRFPolicy | None:
        """Return the enabled policy called ``name``, or ``None``."""
        return self._by_name.get(name)

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def filter(self, activity: Activity, now: float) -> MRFDecision:
        """Run ``activity`` through the pipeline and return the final decision."""
        ctx = MRFContext(
            local_domain=self.local_domain,
            now=now,
            local_instance=self.local_instance,
        )
        current = activity
        modified = False
        last_policy = ""
        last_action = PASS_ACTION
        last_reason = ""

        for policy in self._policies:
            decision = policy.filter(current, ctx)
            if decision.rejected:
                self._log(decision, ctx, activity)
                return decision
            if decision.action != PASS_ACTION or decision.modified:
                modified = True
                last_policy = decision.policy
                last_action = decision.action
                last_reason = decision.reason
                self._log(decision, ctx, activity)
            current = decision.activity

        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=current,
            policy=last_policy,
            action=last_action,
            reason=last_reason,
            modified=modified,
        )

    def _log(self, decision: MRFDecision, ctx: MRFContext, original: Activity) -> None:
        self.events.append(
            ModerationEvent(
                timestamp=ctx.now,
                moderating_domain=self.local_domain,
                origin_domain=original.origin_domain,
                policy=decision.policy,
                action=decision.action,
                activity_type=original.activity_type.value,
                activity_id=original.activity_id,
                accepted=decision.accepted,
                reason=decision.reason,
            )
        )

    # ------------------------------------------------------------------ #
    # Configuration exposure (as used by the Pleroma instance API)
    # ------------------------------------------------------------------ #
    def simple_policy_config(self) -> dict[str, list[str]]:
        """Return the SimplePolicy configuration (action -> target domains)."""
        policy = self.get_policy("SimplePolicy")
        if policy is None:
            return {}
        return policy.config()  # type: ignore[return-value]

    def object_age_config(self) -> dict[str, Any]:
        """Return the ObjectAgePolicy configuration, if enabled."""
        policy = self.get_policy("ObjectAgePolicy")
        if policy is None:
            return {}
        return policy.config()

    def describe(self) -> list[dict[str, Any]]:
        """Return the full pipeline configuration."""
        return [policy.describe() for policy in self._policies]
