"""The ordered MRF policy pipeline run by each instance.

Every policy exposes a declarative :class:`~repro.mrf.base.DecisionPlan`;
the pipeline compiles the enabled policies' plans into a
:class:`CompiledPipeline` — a merged trigger table plus, per origin, a
*batch program* that classifies how much of a single-origin batch's
decision can be shared:

* ``skip``     — no enabled policy can touch anything from the origin; the
  whole batch passes untouched without a per-activity loop.
* ``reject``   — an origin-pure policy rejects everything from the origin;
  one decision (and one report shape) serves the whole batch.
* ``stages``   — the only live policies declare content-independent
  rewrites; the pipeline applies their per-slice outcomes directly,
  sharing rewritten posts through the rewrite ledger, without running any
  policy.  A terminal origin-pure reject may follow the stages.
* ``general``  — anything else runs the classic walk, with per-policy
  triggers still skipping policies inside the loop.

The uncompiled walk is kept as :meth:`MRFPipeline.filter_uncompiled`, the
seed-faithful equivalence baseline every fast path is tested against.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.activitypub.activities import Activity, ActivityType
from repro.fediverse.post import Post
from repro.mrf.shared import _CACHE_LIMIT, mention_count_of
from repro.mrf.base import (
    PASS_ACTION,
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    ModerationEvent,
    PolicyTriggers,
    Verdict,
)


class BatchProgram:
    """How one pipeline handles a single-origin batch (see module docstring)."""

    __slots__ = ("general", "shared", "stages", "residual", "uniform")

    def __init__(
        self,
        general: bool = False,
        shared: tuple[str, str, str] | None = None,
        stages: tuple[tuple[str, Any], ...] = (),
        residual: tuple = (),
        uniform: bool = False,
    ) -> None:
        #: Fall back to the general per-activity walk.
        self.general = general
        #: Terminal shared ``(policy, action, reason)`` rejecting everything.
        self.shared = shared
        #: ``(policy_name, SharedRewrite)`` stages applied before ``shared``
        #: (or standing alone when ``shared`` is ``None``).
        self.stages = stages
        #: Compiled ``(activity, now) -> bool`` predicates for the live
        #: entries that could only act per activity (mention floors, content
        #: columns, type gates …): an activity one fires for takes the full
        #: policy walk; every other activity is decided by
        #: ``stages``/``shared`` alone.
        self.residual = residual
        #: ``True`` when every activity of the batch provably ends in the
        #: terminal ``shared`` reject (no stage or residual policy can act
        #: first), so one report shape serves the whole batch.
        self.uniform = uniform


#: The one immutable "nothing can happen" program, shared across origins.
_SKIP_PROGRAM = BatchProgram()
_GENERAL_PROGRAM = BatchProgram(general=True)

#: ActivityType -> value string (a dict probe beats the enum's
#: DynamicClassAttribute descriptor on the event hot path).
_TYPE_VALUE: dict[ActivityType, str] = {t: t.value for t in ActivityType}

#: Entries kept per lean-decision cache before FIFO eviction (the shared
#: rewrite ledger's bound).
_LEAN_CACHE_LIMIT = _CACHE_LIMIT


def _residual_predicate(triggers: PolicyTriggers, local_domain: str):
    """Compile one residual entry's triggers into a fast ``(activity, now)``
    predicate.

    Batch programs evaluate residual triggers once per activity; the common
    shapes (a lone content column set, a mention floor, a media/bot/reply
    flag, a gated match-all) compile to closures touching only the fields
    that exist, with the generic :meth:`PolicyTriggers.may_touch` kept as
    the catch-all.
    """
    shapes = (
        bool(triggers.handles),
        triggers.max_post_age is not None,
        bool(triggers.post_visibilities),
        triggers.min_mentions is not None,
        triggers.content is not None,
        triggers.media_posts,
        triggers.bot_posts,
        triggers.reply_with_subject,
    )
    gated = triggers.activity_types is not None or triggers.local_origin_only
    origin_sets = bool(triggers.domains or triggers.suffixes or triggers.match_all)
    single = sum(shapes) == 1 and not gated and not origin_sets
    if single:
        if triggers.content is not None:
            fires = triggers.content.fires

            def content_pred(activity: Activity, now: float) -> bool:
                obj = activity.obj
                return obj.__class__ is Post and fires(obj)

            return content_pred
        if triggers.min_mentions is not None:
            floor = triggers.min_mentions

            def mention_pred(activity: Activity, now: float) -> bool:
                obj = activity.obj
                return obj.__class__ is Post and mention_count_of(obj) >= floor

            return mention_pred
        if triggers.media_posts:

            def media_pred(activity: Activity, now: float) -> bool:
                obj = activity.obj
                return obj.__class__ is Post and bool(obj.attachments)

            return media_pred
        if triggers.bot_posts:

            def bot_pred(activity: Activity, now: float) -> bool:
                obj = activity.obj
                return obj.__class__ is Post and (
                    obj.is_bot or activity.actor.bot
                )

            return bot_pred
        if triggers.reply_with_subject:

            def reply_pred(activity: Activity, now: float) -> bool:
                obj = activity.obj
                return (
                    obj.__class__ is Post
                    and obj.in_reply_to is not None
                    and bool(obj.subject)
                )

            return reply_pred
        if triggers.max_post_age is not None:
            cutoff = triggers.max_post_age

            def age_pred(activity: Activity, now: float) -> bool:
                obj = activity.obj
                return obj.__class__ is Post and now - obj.created_at > cutoff

            return age_pred
    if (
        gated
        and triggers.match_all
        and triggers.activity_types is not None
        and not triggers.local_origin_only
    ):
        acting_types = triggers.activity_types

        def type_pred(activity: Activity, now: float) -> bool:
            return activity.activity_type in acting_types

        return type_pred
    may_touch = triggers.may_touch

    def generic_pred(activity: Activity, now: float) -> bool:
        return may_touch(activity, now, local_domain)

    return generic_pred


class StageDecision:
    """A lean stage outcome for report-free delivery.

    Carries everything the counted delivery path reads — the shared
    decision metadata and the (ledger-shared) rewritten post — without
    materialising the rewritten activity wrapper a full
    :class:`~repro.mrf.base.MRFDecision` would require.  Only produced
    when the caller asks :meth:`MRFPipeline.apply_batch` for lean
    decisions.
    """

    __slots__ = ("policy", "action", "reason", "accepted", "modified", "post")

    def __init__(
        self,
        policy: str,
        action: str,
        reason: str,
        accepted: bool,
        modified: bool,
        post: Post | None,
    ) -> None:
        self.policy = policy
        self.action = action
        self.reason = reason
        self.accepted = accepted
        self.modified = modified
        self.post = post


class CompiledPipeline:
    """The precompiled fast-path table of one pipeline configuration.

    Per-policy plans (see :class:`~repro.mrf.base.DecisionPlan`) are merged
    into a single trigger table: the exact-domain sets, wildcard suffixes,
    post-age cutoffs, mention floors and content columns of all *plain*
    plans collapse into one membership test, while gated plans (type- or
    origin-restricted) are kept as a short list evaluated individually.
    When every enabled policy exposes a plan and no trigger fires, the
    activity provably passes untouched and the policy loop (and its context
    construction) is skipped entirely.  Per-origin :class:`BatchProgram`\\ s
    are derived (and cached) on top for the batched delivery engine.
    """

    __slots__ = (
        "entries",
        "plans",
        "versions",
        "fully_planned",
        "never_acts",
        "domains",
        "suffixes",
        "handles",
        "match_all",
        "min_post_age",
        "visibilities",
        "min_mentions",
        "content_triggers",
        "media_posts",
        "bot_posts",
        "reply_with_subject",
        "special",
        "_programs",
        "_type_programs",
        "_default_program",
        "_default_ok",
    )

    def __init__(self, policies: Sequence[MRFPolicy]) -> None:
        entries: list[tuple[MRFPolicy, PolicyTriggers | None]] = []
        plans: list[tuple[MRFPolicy, DecisionPlan | None]] = []
        domains: set[str] = set()
        suffixes: set[str] = set()
        handles: set[str] = set()
        visibilities: set = set()
        content_triggers: list = []
        special: list[PolicyTriggers] = []
        match_all = False
        min_post_age: float | None = None
        min_mentions: int | None = None
        media_posts = False
        bot_posts = False
        reply_with_subject = False
        fully_planned = True
        default_ok = True
        for policy in policies:
            plan = policy.plan()
            if plan is None:
                entries.append((policy, None))
                plans.append((policy, None))
                fully_planned = False
                continue
            triggers = plan.triggers
            per_activity = bool(
                triggers.handles
                or triggers.max_post_age is not None
                or triggers.post_visibilities
                or triggers.min_mentions is not None
                or triggers.content is not None
                or triggers.media_posts
                or triggers.bot_posts
                or triggers.reply_with_subject
            )
            gated = (
                triggers.activity_types is not None or triggers.local_origin_only
            )
            # The default batch program (see program_for) is only sound when
            # liveness and origin-pure outcomes are origin-independent for
            # every origin the merged table misses: a gated entry's origin
            # sets are not merged, and an origin-pure hook reachable through
            # per-activity triggers could fire for unmerged origins.
            if gated and (triggers.domains or triggers.suffixes):
                default_ok = False
            if (
                plan.origin_pure is not None or plan.origin_stages is not None
            ) and per_activity:
                default_ok = False
            if triggers.never_fires:
                # The policy provably never acts (NoOpPolicy, an empty
                # TagPolicy, a behaviour-less CustomPolicy): drop it from
                # the walk entirely instead of re-skipping it per activity.
                continue
            entries.append((policy, triggers))
            plans.append((policy, plan))
            if triggers.activity_types is not None or triggers.local_origin_only:
                special.append(triggers)
                continue
            if triggers.match_all:
                match_all = True
            domains.update(triggers.domains)
            suffixes.update(triggers.suffixes)
            handles.update(triggers.handles)
            visibilities.update(triggers.post_visibilities)
            if triggers.max_post_age is not None:
                if min_post_age is None or triggers.max_post_age < min_post_age:
                    min_post_age = triggers.max_post_age
            if triggers.min_mentions is not None:
                if min_mentions is None or triggers.min_mentions < min_mentions:
                    min_mentions = triggers.min_mentions
            if triggers.content is not None:
                content_triggers.append(triggers.content)
            media_posts = media_posts or triggers.media_posts
            bot_posts = bot_posts or triggers.bot_posts
            reply_with_subject = reply_with_subject or triggers.reply_with_subject
        self.entries = tuple(entries)
        self.plans = tuple(plans)
        self.versions = tuple(policy.config_version for policy in policies)
        self.fully_planned = fully_planned
        self.domains = frozenset(domains)
        self.suffixes = tuple(suffixes)
        self.handles = frozenset(handles)
        self.match_all = match_all
        self.min_post_age = min_post_age
        self.visibilities = frozenset(visibilities)
        self.min_mentions = min_mentions
        self.content_triggers = tuple(content_triggers)
        self.media_posts = media_posts
        self.bot_posts = bot_posts
        self.reply_with_subject = reply_with_subject
        self.special = tuple(special)
        # With every (non-trivial) entry gone, no enabled policy can ever
        # act: the whole pipeline is a provable no-op and batches skip even
        # the per-activity membership checks.
        self.never_acts = fully_planned and not self.entries
        #: origin -> BatchProgram, filled lazily (compiles are per-config,
        #: so the cache can never go stale).
        self._programs: dict[str, BatchProgram] = {}
        #: (origin, activity_type) -> BatchProgram for type-homogeneous
        #: batches carrying no posts (Announce, Like, …), filled lazily.
        self._type_programs: dict[tuple[str, ActivityType], BatchProgram] = {}
        #: The program shared by every origin missing the merged origin
        #: sets, built on first use (see :meth:`program_for`).
        self._default_program: BatchProgram | None = None
        self._default_ok = default_ok

    def origin_may_trigger(self, origin: str) -> bool:
        """The origin-dependent half of :meth:`may_any_touch`.

        Batches share their origin, so callers evaluate this once per batch
        and only run the per-activity residual (handles/content/gated
        triggers) in the loop.
        """
        if self.match_all:
            return True
        if origin in self.domains:
            return True
        for suffix in self.suffixes:
            if origin == suffix or origin.endswith("." + suffix):
                return True
        return False

    def residual_may_touch(
        self, activity: Activity, now: float, local_domain: str
    ) -> bool:
        """The per-activity half of :meth:`may_any_touch`."""
        if self.handles and activity.actor.handle.lower() in self.handles:
            return True
        obj = activity.obj
        if obj.__class__ is Post:
            if (
                self.min_post_age is not None
                and now - obj.created_at > self.min_post_age
            ):
                return True
            if self.visibilities and obj.visibility in self.visibilities:
                return True
            if (
                self.min_mentions is not None
                and mention_count_of(obj) >= self.min_mentions
            ):
                return True
            if self.media_posts and obj.attachments:
                return True
            if self.bot_posts and (obj.is_bot or activity.actor.bot):
                return True
            if (
                self.reply_with_subject
                and obj.in_reply_to is not None
                and obj.subject
            ):
                return True
            for trigger in self.content_triggers:
                if trigger.fires(obj):
                    return True
        for triggers in self.special:
            if triggers.may_touch(activity, now, local_domain):
                return True
        return False

    def may_any_touch(self, activity: Activity, now: float, local_domain: str) -> bool:
        """Return ``True`` when any enabled policy could act on ``activity``."""
        return self.origin_may_trigger(
            activity.origin_domain
        ) or self.residual_may_touch(activity, now, local_domain)

    # ------------------------------------------------------------------ #
    # Per-origin batch programs
    # ------------------------------------------------------------------ #
    def program_for(self, origin: str, local_domain: str) -> BatchProgram:
        """Return (building and caching once) the origin's batch program.

        Programs depend on the origin only through the origin-dependent
        trigger sets and the origin-pure hooks, both of which can only fire
        when the merged origin table fires — so every origin missing that
        table shares one *default* program and skips the per-origin build
        entirely (the overwhelmingly common case: most origins are
        unmoderated by most pipelines).
        """
        if self._default_ok and not self.origin_may_trigger(origin):
            program = self._default_program
            if program is None:
                program = self._build_program(origin, local_domain)
                self._default_program = program
            return program
        program = self._programs.get(origin)
        if program is None:
            program = self._build_program(origin, local_domain)
            self._programs[origin] = program
        return program

    def program_for_type(
        self, origin: str, local_domain: str, activity_type: ActivityType
    ) -> BatchProgram:
        """Return the program for a post-less, type-homogeneous batch.

        Callers must guarantee every activity of the batch has exactly
        ``activity_type`` and that the type's payload is not a
        :class:`~repro.fediverse.post.Post` (Announce, Like, Delete, Follow,
        Flag…) — :func:`repro.activitypub.delivery._batch_type` establishes
        both.  Post-carrying batches use :meth:`program_for`.
        """
        key = (origin, activity_type)
        program = self._type_programs.get(key)
        if program is None:
            program = self._build_type_program(origin, local_domain, activity_type)
            self._type_programs[key] = program
        return program

    def _build_type_program(
        self, origin: str, local_domain: str, activity_type: ActivityType
    ) -> BatchProgram:
        """Classify a single-origin batch of post-less ``activity_type``.

        Far more collapses here than in :meth:`_build_program`, because no
        activity of the batch carries a post: every post-shaped trigger is
        provably silent (they all require a Post payload), and a live
        policy whose behaviour is stage-describable — a
        :class:`~repro.mrf.base.SharedRewrite` or a non-``None``
        ``origin_stages`` result — is a provable no-op, since the
        SharedRewrite contract guarantees the policy passes every activity
        not carrying an old-enough post through untouched.  An Announce is
        therefore origin-pure for most shipped policies: the program is
        either a skip, a terminal shared reject, or (for actor-handle
        triggers) a residual sending selected activities through the walk.
        """
        residual: list[PolicyTriggers] = []
        shared: tuple[str, str, str] | None = None
        for policy, plan in self.plans:
            if plan is None:
                return _GENERAL_PROGRAM
            triggers = plan.triggers
            if not triggers.may_touch_postless(origin, activity_type, local_domain):
                continue
            if plan.origin_pure is not None:
                hit = plan.origin_pure(origin, local_domain)
                if hit is not None:
                    # Origin-pure rejects are type-independent by contract:
                    # everything after this entry is unreachable.
                    shared = (policy.name, hit[0], hit[1])
                    break
            if triggers.origin_fires(origin):
                rewrite = plan.shared_rewrite
                if rewrite is None and plan.origin_stages is not None:
                    rewrite = plan.origin_stages(origin, local_domain)
                if rewrite is None:
                    # Live for the whole batch with no stageable (post-only)
                    # description: the policy may act on post-less
                    # activities in ways no program can express (actor
                    # rewrites, type-dependent rejects, stateful passes).
                    return _GENERAL_PROGRAM
                # Stage-describable behaviour only touches posts — a
                # provable no-op on this batch; drop the entry entirely.
                continue
            # Reachable only through actor-handle triggers: evaluate per
            # activity, sending fired activities through the full walk.
            residual.append(triggers)
        if shared is None and not residual:
            return _SKIP_PROGRAM
        return BatchProgram(
            shared=shared,
            residual=tuple(
                _residual_predicate(triggers, local_domain) for triggers in residual
            ),
            uniform=shared is not None and not residual,
        )

    def _build_program(self, origin: str, local_domain: str) -> BatchProgram:
        """Classify how a single-origin batch can be decided.

        Walks the enabled entries in order.  Entries that provably cannot
        act on anything from ``origin`` are stepped over.  A live entry
        whose plan is origin-pure and whose hook fires ends the walk with a
        terminal shared reject (everything after it is unreachable); one
        whose hook stays silent may still rewrite per activity, so the
        batch is general.  A live entry declaring a content-independent
        rewrite becomes a stage.  Every other live entry either affects the
        whole batch (its origin-level trigger fires ungated — general) or
        only activities its per-activity triggers select — those triggers
        become the program's *residual*: an activity none of them fires for
        is provably decided by the stages/terminal alone, everything else
        takes the full walk.
        """
        stages: list[tuple[str, Any]] = []
        residual: list[PolicyTriggers] = []
        shared: tuple[str, str, str] | None = None
        local = local_domain
        for policy, plan in self.plans:
            if plan is None:
                return _GENERAL_PROGRAM
            triggers = plan.triggers
            if not triggers.could_act_for(origin):
                continue
            ungated = (
                triggers.activity_types is None and not triggers.local_origin_only
            )
            if plan.origin_pure is not None:
                hit = plan.origin_pure(origin, local_domain)
                if hit is not None:
                    shared = (policy.name, hit[0], hit[1])
                    break
            rewrite = plan.shared_rewrite
            if rewrite is None and plan.origin_stages is not None:
                # The origin-pure hook (if any) stayed silent: ask the
                # origin-conditional stage hook what the policy does to
                # this origin's activities.
                rewrite = plan.origin_stages(origin, local_domain)
                if rewrite is not None and not rewrite.outcomes:
                    # A provable per-origin no-op (e.g. SimplePolicy with
                    # only an accept list): drop the entry from the batch.
                    continue
            if rewrite is not None and ungated:
                stages.append((policy.name, rewrite))
                continue
            if plan.origin_pure is not None:
                # Live without an unconditional reject and without a
                # stageable description: the policy may still act per
                # activity in ways no stage can express (e.g. SimplePolicy
                # avatar/banner removal or type-dependent rejects).
                return _GENERAL_PROGRAM
            if ungated and triggers.origin_fires(origin):
                # Every activity of the batch could be touched (match_all
                # stateful policies, matched origin triggers): nothing to
                # share.
                return _GENERAL_PROGRAM
            residual.append(triggers)
        if shared is None and not stages and not residual:
            return _SKIP_PROGRAM
        if stages and residual:
            # A stage rewrite may change a post's visibility (ObjectAge
            # delists, SimplePolicy forces followers-only); a residual
            # trigger reading a produced visibility could then fire on the
            # rewritten activity though it did not on the original — e.g.
            # RejectNonPublic behind a followers_only stage.  Such batches
            # must take the walk, where rewrites and triggers compose in
            # order.  Rewrites declare what they produce (see
            # :attr:`~repro.mrf.base.SliceOutcome.produces_visibility`).
            produced = {
                outcome.produces_visibility
                for _, rewrite in stages
                for outcome in rewrite.outcomes.values()
                if outcome.produces_visibility is not None
            }
            if produced and any(
                produced & triggers.post_visibilities for triggers in residual
            ):
                return _GENERAL_PROGRAM
        # A reject-capable stage (e.g. ObjectAge's "reject" action) or a
        # residual policy can end an activity before the terminal shared
        # reject does, so the batch's reports are only uniform when stages
        # are pure rewrites and no residual policies exist.  Uniform mode
        # also skips materialising the rewritten activities (only their
        # events matter), which is sound only while no *later* stage could
        # classify the rewritten post differently — so it is limited to a
        # single stage.
        stage_can_reject = any(
            outcome.reject
            for _, rewrite in stages
            for outcome in rewrite.outcomes.values()
        )
        return BatchProgram(
            shared=shared,
            stages=tuple(stages),
            residual=tuple(
                _residual_predicate(triggers, local) for triggers in residual
            ),
            uniform=(
                shared is not None
                and not stage_can_reject
                and not residual
                and len(stages) <= 1
            ),
        )


class MRFPipeline:
    """Run incoming activities through the enabled policies, in order.

    The pipeline short-circuits on the first rejection.  Rewrites compose:
    each policy receives the activity as (possibly) rewritten by the policies
    before it.  Every reject or rewrite is logged as a
    :class:`~repro.mrf.base.ModerationEvent`.

    Filtering runs through a precompiled fast path: per-policy decision
    plans are merged into a :class:`CompiledPipeline` so activities no
    policy can touch skip the Python loop entirely, policies that provably
    cannot act on an activity are skipped inside the loop, and single-origin
    batches share whole decisions (rejects *and* content-independent
    rewrites) through :meth:`apply_batch`.  The uncompiled walk is kept as
    :meth:`filter_uncompiled`, the equivalence baseline.
    """

    def __init__(self, local_domain: str, local_instance: Any = None) -> None:
        self.local_domain = local_domain
        self.local_instance = local_instance
        self._policies: list[MRFPolicy] = []
        self._by_name: dict[str, MRFPolicy] = {}
        self._compiled: CompiledPipeline | None = None
        #: Bumped on every membership change (and explicit invalidation) so
        #: :meth:`config_fingerprint` can't mistake a replacement policy
        #: for the object it replaced.
        self._config_epoch = 0
        self.events: list[ModerationEvent] = []

    # ------------------------------------------------------------------ #
    # Policy management
    # ------------------------------------------------------------------ #
    @property
    def policies(self) -> list[MRFPolicy]:
        """Return the enabled policies in evaluation order."""
        return list(self._policies)

    @property
    def policy_names(self) -> list[str]:
        """Return the names of enabled policies in evaluation order."""
        return [policy.name for policy in self._policies]

    def add_policy(self, policy: MRFPolicy) -> None:
        """Enable a policy (appended at the end of the pipeline)."""
        if policy.name in self._by_name:
            raise ValueError(f"policy already enabled: {policy.name}")
        self._policies.append(policy)
        self._by_name[policy.name] = policy
        self._compiled = None
        self._config_epoch += 1

    def remove_policy(self, name: str) -> bool:
        """Disable the policy called ``name``; return ``True`` if it existed."""
        policy = self._by_name.pop(name, None)
        if policy is None:
            return False
        self._policies.remove(policy)
        self._compiled = None
        self._config_epoch += 1
        return True

    def has_policy(self, name: str) -> bool:
        """Return ``True`` when a policy with that name is enabled."""
        return name in self._by_name

    def get_policy(self, name: str) -> MRFPolicy | None:
        """Return the enabled policy called ``name``, or ``None``."""
        return self._by_name.get(name)

    # ------------------------------------------------------------------ #
    # Precompilation
    # ------------------------------------------------------------------ #
    def compiled(self) -> CompiledPipeline:
        """Return the compiled fast-path table, rebuilding it when stale."""
        compiled = self._compiled
        if compiled is not None:
            for policy, version in zip(self._policies, compiled.versions):
                if policy.config_version != version:
                    compiled = None
                    break
        if compiled is None:
            compiled = CompiledPipeline(self._policies)
            self._compiled = compiled
        return compiled

    def invalidate_compiled(self) -> None:
        """Force a recompile (needed after mutating a policy in place
        without going through a version-bumping configuration method).
        Also invalidates cached metadata payloads derived from
        :meth:`config_fingerprint`."""
        self._compiled = None
        self._config_epoch += 1

    def config_fingerprint(self) -> tuple:
        """Return a cheap fingerprint of the exposed MRF configuration.

        The API server's batch engine caches each instance's metadata
        payload against this fingerprint, so it must change whenever the
        payload's ``federation`` block could: a policy is added or removed
        (or the pipeline is explicitly invalidated) — tracked by the
        pipeline's membership epoch — or an enabled policy bumps its
        :attr:`~repro.mrf.base.MRFPolicy.config_version` through a mutating
        configuration method.  Like the compiled fast-path table, in-place
        mutations that bypass the version-bumping mutators are not
        detected (call :meth:`invalidate_compiled` after such a mutation).
        """
        return (
            self._config_epoch,
            tuple(policy.config_version for policy in self._policies),
        )

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def filter(self, activity: Activity, now: float) -> MRFDecision:
        """Run ``activity`` through the pipeline and return the final decision."""
        compiled = self.compiled()
        if compiled.fully_planned and not compiled.may_any_touch(
            activity, now, self.local_domain
        ):
            return MRFDecision(verdict=Verdict.ACCEPT, activity=activity)
        ctx = MRFContext(
            local_domain=self.local_domain,
            now=now,
            local_instance=self.local_instance,
        )
        decision = self._run(activity, ctx, compiled)
        if decision is None:
            return MRFDecision(verdict=Verdict.ACCEPT, activity=activity)
        return decision

    def filter_batch(
        self, activities: Iterable[Activity], now: float
    ) -> list[MRFDecision]:
        """Filter several activities, reusing one context and one compile.

        Equivalent to calling :meth:`filter` per activity (the clock does
        not advance within a batch), but the compiled table is validated
        once and the :class:`~repro.mrf.base.MRFContext` is built at most
        once per batch instead of once per activity.
        """
        activities = list(activities)
        return [
            decision
            if decision is not None
            else MRFDecision(verdict=Verdict.ACCEPT, activity=activity)
            for activity, decision in zip(activities, self.filter_batch_lazy(activities, now))
        ]

    def filter_batch_lazy(
        self, activities: Iterable[Activity], now: float
    ) -> list[MRFDecision | None]:
        """Like :meth:`filter_batch`, but untouched activities yield ``None``.

        ``None`` stands for the trivial accept decision — the caller can
        treat the activity itself as the filtered result without paying for
        a decision object.  This is the engine's hot path: at scale, most
        activities are untouched.
        """
        compiled = self.compiled()
        local_domain = self.local_domain
        if not isinstance(activities, (list, tuple)):
            activities = list(activities)
        if compiled.never_acts:
            return [None] * len(activities)
        fast = compiled.fully_planned
        # A fully-planned single-entry pipeline needs no policy walk: the
        # merged table firing already identifies the one policy to run.
        single = fast and len(compiled.entries) == 1
        single_policy = compiled.entries[0][0] if single else None
        # The origin-dependent half of the merged table is evaluated once per
        # distinct origin in the batch (usually exactly one); the residual
        # per-activity triggers are inlined with hoisted locals.
        origin_triggers: dict[str, bool] = {}
        origin_may_trigger = compiled.origin_may_trigger
        handles = compiled.handles
        min_post_age = compiled.min_post_age
        visibilities = compiled.visibilities
        special = compiled.special
        residual = compiled.residual_may_touch
        plain_residual = not handles and not special
        # The inlined branch below only understands the age/visibility
        # triggers; content-shaped triggers (mentions, columns, media, bot,
        # reply) drop to the generic residual call.
        simple_content = (
            compiled.min_mentions is None
            and not compiled.content_triggers
            and not compiled.media_posts
            and not compiled.bot_posts
            and not compiled.reply_with_subject
        )
        inline_residual = plain_residual and simple_content
        content_blind = (
            inline_residual and min_post_age is None and not visibilities
        )
        ctx: MRFContext | None = None
        decisions: list[MRFDecision | None] = []
        append = decisions.append
        for activity in activities:
            if fast:
                origin = activity.origin_domain
                triggered = origin_triggers.get(origin)
                if triggered is None:
                    triggered = origin_may_trigger(origin)
                    origin_triggers[origin] = triggered
                if not triggered:
                    if content_blind:
                        append(None)
                        continue
                    if inline_residual:
                        obj = activity.obj
                        if obj.__class__ is not Post or not (
                            (
                                min_post_age is not None
                                and now - obj.created_at > min_post_age
                            )
                            or (visibilities and obj.visibility in visibilities)
                        ):
                            append(None)
                            continue
                    elif not residual(activity, now, local_domain):
                        append(None)
                        continue
            if ctx is None:
                ctx = MRFContext(
                    local_domain=local_domain,
                    now=now,
                    local_instance=self.local_instance,
                )
            if single:
                append(self._run_single(activity, ctx, single_policy))
            else:
                append(self._run(activity, ctx, compiled))
        return decisions

    # ------------------------------------------------------------------ #
    # Batched shared decisions (the delivery engine's entry point)
    # ------------------------------------------------------------------ #
    def apply_batch(
        self,
        activities: Sequence[Activity],
        origin: str,
        now: float,
        lean: bool = False,
        activity_type: ActivityType | None = None,
    ) -> tuple[tuple[str, str, str] | None, list | None, int]:
        """Decide a whole single-origin batch, sharing what the plans allow.

        Returns ``(shared, decisions, shared_rewrites)``:

        * ``shared`` — a ``(policy, action, reason)`` rejecting *every*
          activity of the batch (``decisions`` is then ``None``); the
          per-activity moderation events are already logged, exactly as
          running :meth:`filter` per activity would have recorded them.
        * ``decisions`` — otherwise, one entry per activity as in
          :meth:`filter_batch_lazy` (``None`` = untouched accept).  With
          ``lean=True`` (the report-free delivery path), stage-decided
          activities yield :class:`StageDecision` objects carrying the
          rewritten *post* instead of a full decision with a rewritten
          activity wrapper.
        * ``shared_rewrites`` — how many activities had a rewrite decision
          applied through a shared (content-independent) stage rather than
          a policy run.

        ``origin`` must be the normalised origin of every activity in the
        batch, as activity origins are.  ``activity_type`` — when the caller
        can prove the batch is type-homogeneous with a post-less payload
        type (Announce, Like, …) — selects the tighter per-``(origin,
        type)`` program (see :meth:`CompiledPipeline.program_for_type`);
        ``None`` keeps the type-agnostic per-origin program, which is
        always correct.
        """
        compiled = self.compiled()
        if activity_type is not None:
            program = compiled.program_for_type(
                origin, self.local_domain, activity_type
            )
        else:
            program = compiled.program_for(origin, self.local_domain)
        if program.general:
            return (None, self.filter_batch_lazy(activities, now), 0)
        shared = program.shared
        if not program.stages and not program.residual:
            if shared is None:  # nothing can touch this origin's batch
                return (None, [None] * len(activities), 0)
            self._log_shared(activities, origin, shared, now)
            return (shared, None, 0)
        return self._run_stages(activities, origin, compiled, program, now, lean)

    @staticmethod
    def _lean_decision(policy_name: str, outcome, post: Post) -> StageDecision:
        """Return the (interned) lean decision of one stage outcome.

        Reject outcomes are constant per outcome; accept outcomes are
        constant per (outcome, post) — the rewritten post comes out of the
        shared ledger — so the decision objects themselves are shared
        across every receiver a post federates to.
        """
        cache = outcome.lean_cache
        if outcome.reject:
            decision = cache.get(None)
            if decision is None:
                decision = StageDecision(
                    policy_name, outcome.action, outcome.reason, False, False, None
                )
                cache[None] = decision
            return decision
        key = id(post)
        entry = cache.get(key)
        if entry is not None and entry[0] is post:
            return entry[1]
        if len(cache) >= _LEAN_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        decision = StageDecision(
            policy_name,
            outcome.action,
            outcome.reason,
            True,
            True,
            outcome.rewrite_post(post),
        )
        cache[key] = (post, decision)
        return decision

    def _log_shared(
        self,
        activities: Sequence[Activity],
        origin: str,
        shared: tuple[str, str, str],
        now: float,
        accepted: bool = False,
    ) -> None:
        """Log one moderation event per activity for a shared decision."""
        policy, action, reason = shared
        base = {
            "timestamp": now,
            "moderating_domain": self.local_domain,
            "origin_domain": origin,
            "policy": policy,
            "action": action,
            "accepted": accepted,
            "reason": reason,
        }
        type_value = _TYPE_VALUE
        append = self.events.append
        for activity in activities:
            event = object.__new__(ModerationEvent)
            state = dict(base)
            state["activity_type"] = type_value[activity.activity_type]
            state["activity_id"] = activity.activity_id
            event.__dict__.update(state)
            append(event)

    def _run_stages(
        self,
        activities: Sequence[Activity],
        origin: str,
        compiled: CompiledPipeline,
        program: BatchProgram,
        now: float,
        lean: bool,
    ) -> tuple[tuple[str, str, str] | None, list | None, int]:
        """Apply content-independent rewrite stages (plus a terminal shared
        reject, when present) to a single-origin batch.

        Per activity and stage, the age selector and slice classifier
        reproduce exactly what the policy's ``filter`` would have decided —
        that is the :class:`~repro.mrf.base.SharedRewrite` contract — so
        events and decisions are indistinguishable from the walked path,
        while the decision metadata is shared and rewritten posts come out
        of the shared ledger.  Activities a residual trigger fires for take
        the full policy walk instead.  In ``uniform`` mode (pure-rewrite
        stages before a terminal shared reject, no residual) the rewritten
        activities are unobservable — only their events are logged — and
        one report shape serves the whole batch.
        """
        stages = program.stages
        residual = program.residual
        shared = program.shared
        uniform = program.uniform
        local_domain = self.local_domain
        events_append = self.events.append
        rewrites = 0
        if (
            len(stages) == 1
            and not residual
            and shared is None
            and not uniform
        ):
            # The dominant program (a lone ObjectAge-style stage): one
            # hoisted loop, no per-stage dispatch.
            policy_name, rewrite = stages[0]
            threshold = rewrite.age_threshold
            outcomes = rewrite.outcomes
            slice_of = rewrite.slice_of
            type_value = _TYPE_VALUE
            decisions: list = []
            append = decisions.append
            for activity in activities:
                obj = activity.obj
                if (
                    obj.__class__ is not Post
                    or now - obj.created_at <= threshold
                ):
                    append(None)
                    continue
                outcome = outcomes.get(slice_of(obj))
                if outcome is None:
                    append(None)
                    continue
                rewrites += 1
                event = object.__new__(ModerationEvent)
                event.__dict__.update(
                    timestamp=now,
                    moderating_domain=local_domain,
                    origin_domain=origin,
                    policy=policy_name,
                    action=outcome.action,
                    activity_type=type_value[activity.activity_type],
                    activity_id=activity.activity_id,
                    accepted=not outcome.reject,
                    reason=outcome.reason,
                )
                events_append(event)
                if lean:
                    append(self._lean_decision(policy_name, outcome, obj))
                elif outcome.reject:
                    append(
                        MRFDecision(
                            verdict=Verdict.REJECT,
                            activity=activity,
                            policy=policy_name,
                            action=outcome.action,
                            reason=outcome.reason,
                        )
                    )
                else:
                    append(
                        MRFDecision(
                            verdict=Verdict.ACCEPT,
                            activity=outcome.rewrite(activity, obj),
                            policy=policy_name,
                            action=outcome.action,
                            reason=outcome.reason,
                            modified=True,
                        )
                    )
            return (None, decisions, rewrites)

        type_value = _TYPE_VALUE
        decisions = None if uniform else []
        ctx: MRFContext | None = None
        for activity in activities:
            if residual:
                fired = False
                for predicate in residual:
                    if predicate(activity, now):
                        fired = True
                        break
                if fired:
                    # A per-activity policy could act: this activity takes
                    # the full walk (which runs the stage policies too).
                    if ctx is None:
                        ctx = MRFContext(
                            local_domain=local_domain,
                            now=now,
                            local_instance=self.local_instance,
                        )
                    decisions.append(self._run(activity, ctx, compiled))
                    continue
            obj = activity.obj
            current_post = obj if obj.__class__ is Post else None
            current = activity
            acting = None
            for policy_name, rewrite in stages:
                if (
                    current_post is None
                    or now - current_post.created_at <= rewrite.age_threshold
                ):
                    continue
                outcome = rewrite.outcomes.get(rewrite.slice_of(current_post))
                if outcome is None:
                    continue
                rewrites += 1
                event = object.__new__(ModerationEvent)
                event.__dict__.update(
                    timestamp=now,
                    moderating_domain=local_domain,
                    origin_domain=origin,
                    policy=policy_name,
                    action=outcome.action,
                    activity_type=type_value[activity.activity_type],
                    activity_id=activity.activity_id,
                    accepted=not outcome.reject,
                    reason=outcome.reason,
                )
                events_append(event)
                if outcome.reject:
                    if lean:
                        acting = self._lean_decision(
                            policy_name, outcome, current_post
                        )
                    else:
                        acting = MRFDecision(
                            verdict=Verdict.REJECT,
                            activity=current,
                            policy=policy_name,
                            action=outcome.action,
                            reason=outcome.reason,
                        )
                    break
                if uniform:
                    # The batch ends in a shared reject: the rewritten
                    # activity is unobservable, only its event matters.
                    continue
                if lean:
                    acting = self._lean_decision(policy_name, outcome, current_post)
                    current_post = acting.post
                else:
                    current = outcome.rewrite(current, current_post)
                    current_post = current.obj
                    acting = MRFDecision(
                        verdict=Verdict.ACCEPT,
                        activity=current,
                        policy=policy_name,
                        action=outcome.action,
                        reason=outcome.reason,
                        modified=True,
                    )
            if acting is not None and not acting.accepted:
                decisions.append(acting)
                continue
            if shared is not None:
                policy, action, reason = shared
                event = object.__new__(ModerationEvent)
                event.__dict__.update(
                    timestamp=now,
                    moderating_domain=local_domain,
                    origin_domain=origin,
                    policy=policy,
                    action=action,
                    activity_type=type_value[activity.activity_type],
                    activity_id=activity.activity_id,
                    accepted=False,
                    reason=reason,
                )
                events_append(event)
                if not uniform:
                    if lean:
                        decisions.append(
                            StageDecision(policy, action, reason, False, False, None)
                        )
                    else:
                        decisions.append(
                            MRFDecision(
                                verdict=Verdict.REJECT,
                                activity=current,
                                policy=policy,
                                action=action,
                                reason=reason,
                            )
                        )
                continue
            decisions.append(acting)
        if uniform:
            return (shared, None, rewrites)
        return (None, decisions, rewrites)

    def _run(
        self, activity: Activity, ctx: MRFContext, compiled: CompiledPipeline
    ) -> MRFDecision | None:
        """The policy walk, skipping policies that provably cannot act.

        Returns ``None`` when no policy touched the activity (the trivial
        accept) so hot callers can skip the decision object entirely.
        """
        current = activity
        acting: MRFDecision | None = None
        now = ctx.now
        local_domain = ctx.local_domain

        for policy, triggers in compiled.entries:
            if triggers is not None and not triggers.may_touch(
                current, now, local_domain
            ):
                continue
            decision = policy.filter(current, ctx)
            if decision.rejected:
                self._log(decision, ctx, activity)
                return decision
            if decision.action != PASS_ACTION or decision.modified:
                acting = decision
                self._log(decision, ctx, activity)
            current = decision.activity

        if acting is None:
            return None if current is activity else MRFDecision(
                verdict=Verdict.ACCEPT, activity=current
            )
        # The final decision aggregates the last acting policy's fields with
        # modified=True; when that policy's own decision already carries them
        # (the overwhelmingly common single-rewriter case), reuse it.
        if acting.modified and acting.activity is current:
            return acting
        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=current,
            policy=acting.policy,
            action=acting.action,
            reason=acting.reason,
            modified=True,
        )

    def _run_single(
        self, activity: Activity, ctx: MRFContext, policy: MRFPolicy
    ) -> MRFDecision | None:
        """:meth:`_run` specialised for a one-entry compiled pipeline whose
        merged trigger table already fired — the policy runs unconditionally."""
        decision = policy.filter(activity, ctx)
        if decision.rejected:
            self._log(decision, ctx, activity)
            return decision
        if decision.action != PASS_ACTION or decision.modified:
            self._log(decision, ctx, activity)
            if decision.modified:
                return decision
            return MRFDecision(
                verdict=Verdict.ACCEPT,
                activity=decision.activity,
                policy=decision.policy,
                action=decision.action,
                reason=decision.reason,
                modified=True,
            )
        current = decision.activity
        if current is activity:
            return None
        return MRFDecision(verdict=Verdict.ACCEPT, activity=current)

    def filter_uncompiled(self, activity: Activity, now: float) -> MRFDecision:
        """The seed's uncompiled policy walk, kept as the equivalence baseline.

        Behaviourally identical to :meth:`filter`; every policy runs
        unconditionally.  Equivalence tests and the perf harness compare the
        two paths.
        """
        ctx = MRFContext(
            local_domain=self.local_domain,
            now=now,
            local_instance=self.local_instance,
        )
        current = activity
        modified = False
        last_policy = ""
        last_action = PASS_ACTION
        last_reason = ""

        for policy in self._policies:
            decision = policy.filter(current, ctx)
            if decision.rejected:
                self._log(decision, ctx, activity)
                return decision
            if decision.action != PASS_ACTION or decision.modified:
                modified = True
                last_policy = decision.policy
                last_action = decision.action
                last_reason = decision.reason
                self._log(decision, ctx, activity)
            current = decision.activity

        return MRFDecision(
            verdict=Verdict.ACCEPT,
            activity=current,
            policy=last_policy,
            action=last_action,
            reason=last_reason,
            modified=modified,
        )

    def _log(self, decision: MRFDecision, ctx: MRFContext, original: Activity) -> None:
        # Hot path: built via __new__/__dict__ to skip the frozen-dataclass
        # per-field object.__setattr__ walk; the event is identical to one
        # built through the constructor (and still immutable to callers).
        event = object.__new__(ModerationEvent)
        event.__dict__.update(
            timestamp=ctx.now,
            moderating_domain=self.local_domain,
            origin_domain=original.origin_domain,
            policy=decision.policy,
            action=decision.action,
            activity_type=_TYPE_VALUE[original.activity_type],
            activity_id=original.activity_id,
            accepted=decision.accepted,
            reason=decision.reason,
        )
        self.events.append(event)

    # ------------------------------------------------------------------ #
    # Configuration exposure (as used by the Pleroma instance API)
    # ------------------------------------------------------------------ #
    def simple_policy_config(self) -> dict[str, list[str]]:
        """Return the SimplePolicy configuration (action -> target domains)."""
        policy = self.get_policy("SimplePolicy")
        if policy is None:
            return {}
        return policy.config()  # type: ignore[return-value]

    def object_age_config(self) -> dict[str, Any]:
        """Return the ObjectAgePolicy configuration, if enabled."""
        policy = self.get_policy("ObjectAgePolicy")
        if policy is None:
            return {}
        return policy.config()

    def describe(self) -> list[dict[str, Any]]:
        """Return the full pipeline configuration."""
        return [policy.describe() for policy in self._policies]
