"""Shared result types for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured comparison for a single metric."""

    metric: str
    measured: float | None
    paper: float | None = None
    unit: str = ""
    note: str = ""

    @property
    def absolute_difference(self) -> float | None:
        """Return ``|measured - paper|`` when both values are known."""
        if self.measured is None or self.paper is None:
            return None
        return abs(self.measured - self.paper)

    @property
    def relative_difference(self) -> float | None:
        """Return the relative difference when both values are known."""
        if self.measured is None or self.paper is None or self.paper == 0:
            return None
        return abs(self.measured - self.paper) / abs(self.paper)

    def format(self) -> str:
        """Return a one-line human-readable rendering."""
        def fmt(value: float | None) -> str:
            if value is None:
                return "n/a"
            if self.unit == "%":
                return f"{value * 100:.1f}%"
            if isinstance(value, float) and not value.is_integer():
                return f"{value:.3f}"
            return f"{int(value)}"

        line = f"{self.metric}: measured={fmt(self.measured)} paper={fmt(self.paper)}"
        if self.note:
            line += f" ({self.note})"
        return line


@dataclass
class ExperimentResult:
    """The outcome of regenerating one paper artefact."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    comparisons: list[Comparison] = field(default_factory=list)
    notes: str = ""

    def add_comparison(
        self,
        metric: str,
        measured: float | None,
        paper: float | None = None,
        unit: str = "",
        note: str = "",
    ) -> None:
        """Append one paper-vs-measured comparison."""
        self.comparisons.append(
            Comparison(metric=metric, measured=measured, paper=paper, unit=unit, note=note)
        )

    def comparison(self, metric: str) -> Comparison:
        """Return the comparison for ``metric``, raising when absent."""
        for comparison in self.comparisons:
            if comparison.metric == metric:
                return comparison
        raise KeyError(metric)

    def measured(self, metric: str) -> float | None:
        """Return the measured value of one comparison."""
        return self.comparison(metric).measured

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def format_rows(self, limit: int | None = 20) -> str:
        """Render the result rows as a fixed-width text table."""
        if not self.rows:
            return "(no rows)"
        rows = self.rows if limit is None else self.rows[:limit]
        columns = list(rows[0])
        widths = {
            column: max(len(str(column)), *(len(self._cell(row.get(column))) for row in rows))
            for column in columns
        }
        header = "  ".join(str(column).ljust(widths[column]) for column in columns)
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                "  ".join(self._cell(row.get(column)).ljust(widths[column]) for column in columns)
            )
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    @staticmethod
    def _cell(value: Any) -> str:
        if value is None:
            return "NA"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def to_text(self, row_limit: int | None = 20) -> str:
        """Render the full experiment report as text."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.notes:
            lines.append(self.notes)
        if self.rows:
            lines.append(self.format_rows(row_limit))
        if self.comparisons:
            lines.append("paper vs measured:")
            lines.extend(f"  {comparison.format()}" for comparison in self.comparisons)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the result (for JSON export)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "notes": self.notes,
            "rows": self.rows,
            "comparisons": [
                {
                    "metric": c.metric,
                    "measured": c.measured,
                    "paper": c.paper,
                    "unit": c.unit,
                    "note": c.note,
                }
                for c in self.comparisons
            ],
        }
