"""Command-line entry point: regenerate the paper's tables and figures.

Examples
--------
Run every experiment on the default (small) scenario::

    pleroma-repro

Run a single experiment on the medium scenario and save JSON output::

    pleroma-repro --scenario medium --experiment collateral --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.pipeline import ReproPipeline
from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment
from repro.synth.scenario import SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="pleroma-repro",
        description=(
            "Reproduce the tables and figures of 'Exploring Content Moderation "
            "in the Decentralised Web: The Pleroma Case' (CoNEXT 2021) on a "
            "synthetic fediverse."
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="small",
        help="population scale of the synthetic fediverse (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="generator seed (default: 42)"
    )
    parser.add_argument(
        "--campaign-days",
        type=float,
        default=2.0,
        help="length of the simulated crawl window in days (default: 2)",
    )
    parser.add_argument(
        "--experiment",
        choices=["all", *sorted(EXPERIMENTS)],
        default="all",
        help="which experiment to run (default: all)",
    )
    parser.add_argument(
        "--row-limit",
        type=int,
        default=20,
        help="maximum table rows printed per experiment (default: 20)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also write the results as JSON to this path",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    pipeline = ReproPipeline(
        scenario=args.scenario, seed=args.seed, campaign_days=args.campaign_days
    )
    if args.experiment == "all":
        results = run_all(pipeline)
    else:
        results = [run_experiment(args.experiment, pipeline)]

    for result in results:
        print(result.to_text(row_limit=args.row_limit))
        print()

    if args.json is not None:
        payload = [result.to_dict() for result in results]
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
