"""The numbers reported in the paper, used as comparison targets.

Only values explicitly stated in the paper's text, tables or figure captions
are recorded here; each constant is annotated with its source.  Experiments
compare the measured (synthetic) value against these to produce the
paper-vs-measured records in EXPERIMENTS.md.
"""

from __future__ import annotations

# --------------------------------------------------------------------------- #
# Section 3 — dataset statistics
# --------------------------------------------------------------------------- #
TOTAL_INSTANCES = 9_969
PLEROMA_INSTANCES = 1_534
NON_PLEROMA_INSTANCES = 8_435
CRAWLABLE_PLEROMA = 1_298
CRAWLABLE_SHARE = 0.846
UNCRAWLABLE_STATUS = {404: 110, 403: 84, 502: 24, 503: 11, 410: 7}
TOTAL_USERS = 111_000
USERS_WITH_POSTS_SHARE = 0.487
TOTAL_POSTS = 24_500_000
COLLECTED_POSTS = 14_500_000
USERS_COVERED_BY_POSTS = 91_700
INSTANCES_WITH_POSTS = 796
POLICY_EXPOSURE_SHARE = 0.919

# --------------------------------------------------------------------------- #
# Section 4.1 — policies
# --------------------------------------------------------------------------- #
POLICY_TYPES_TOTAL = 46
POLICY_TYPES_BUILTIN = 26
POLICY_TYPES_CUSTOM = 20
USERS_IMPACTED_SHARE = 0.977
POSTS_IMPACTED_SHARE = 0.978
USERS_REJECTED_SHARE = 0.862
POSTS_REJECTED_SHARE = 0.885
REJECT_EVENT_SHARE = 0.628
REJECTED_OF_MODERATED_SHARE = 0.80
SIMPLEPOLICY_REJECT_ADOPTION = 0.73
MEDIA_REMOVAL_INSTANCE_SHARE = 0.054
MEDIA_REMOVAL_USER_SHARE = 0.233

#: Figure 1 / Table 3: instances enabling each policy (out of 1,298) and the
#: users on those instances.
POLICY_TABLE: dict[str, tuple[int, int]] = {
    "ObjectAgePolicy": (869, 57_854),
    "TagPolicy": (429, 38_067),
    "SimplePolicy": (330, 46_691),
    "NoOpPolicy": (176, 6_443),
    "HellthreadPolicy": (87, 14_401),
    "StealEmojiPolicy": (81, 7_003),
    "HashtagPolicy": (62, 10_933),
    "AntiFollowbotPolicy": (51, 6_918),
    "MediaProxyWarmingPolicy": (46, 9_851),
    "KeywordPolicy": (42, 22_428),
    "AntiLinkSpamPolicy": (32, 7_347),
    "ForceBotUnlistedPolicy": (23, 6_746),
    "EnsureRePrepended": (18, 247),
    "ActivityExpirationPolicy": (11, 1_420),
    "SubchainPolicy": (8, 81),
    "MentionPolicy": (6, 1_149),
    "VocabularyPolicy": (5, 121),
    "AntiHellthreadPolicy": (4, 2_106),
    "RejectNonPublic": (3, 1_101),
    "FollowBotPolicy": (2, 281),
    "DropPolicy": (1, 1_098),
}

#: Figure 1: expected ordering of the most-enabled policies.
TOP_POLICY_ORDER = ("ObjectAgePolicy", "TagPolicy", "SimplePolicy", "NoOpPolicy")

# --------------------------------------------------------------------------- #
# Section 4.2 — rejected instances
# --------------------------------------------------------------------------- #
REJECTED_UNIQUE_INSTANCES = 1_200
REJECTED_PLEROMA_INSTANCES = 202
REJECTED_NON_PLEROMA_INSTANCES = 998
REJECTED_PLEROMA_SHARE = 0.155
REJECTED_USER_SHARE = 0.862
REJECTED_POST_SHARE = 0.887
REJECTED_BY_FEWER_THAN_10_SHARE = 0.868
ELITE_REJECTED_SHARE = 0.054
ELITE_REJECTS_THRESHOLD = 20
ELITE_USER_SHARE = 0.336
ELITE_POST_SHARE = 0.234
SPEARMAN_POSTS_VS_REJECTS = 0.38
SPEARMAN_RETALIATION = -0.033
ANNOTATED_SHARE = 0.884
ANNOTATED_HARMFUL_CATEGORY_SHARE = 0.906
ANNOTATED_GENERAL_SHARE = 0.094

#: Table 1: the five most rejected Pleroma instances.
TABLE1 = [
    {
        "instance": "freespeech-extremist.com",
        "rejects": 97,
        "users": 1_800,
        "posts": 1_130_000,
        "toxicity": 0.26,
        "profanity": 0.22,
        "sexually_explicit": 0.16,
    },
    {
        "instance": "kiwifarms.cc",
        "rejects": 86,
        "users": 6_800,
        "posts": 391_000,
        "toxicity": 0.24,
        "profanity": 0.19,
        "sexually_explicit": 0.16,
    },
    {
        "instance": "spinster.xyz",
        "rejects": 65,
        "users": 17_900,
        "posts": 1_340_000,
        "toxicity": None,
        "profanity": None,
        "sexually_explicit": None,
    },
    {
        "instance": "neckbeard.xyz",
        "rejects": 61,
        "users": 15_100,
        "posts": 816_000,
        "toxicity": 0.13,
        "profanity": 0.11,
        "sexually_explicit": 0.11,
    },
    {
        "instance": "poa.st",
        "rejects": 51,
        "users": 5_100,
        "posts": 344_000,
        "toxicity": 0.27,
        "profanity": 0.25,
        "sexually_explicit": 0.18,
    },
]

# --------------------------------------------------------------------------- #
# Section 5 — collateral damage
# --------------------------------------------------------------------------- #
REJECTED_WITH_POSTS_SHARE = 0.619
SINGLE_USER_REJECTED_SHARE = 0.264
COLLATERAL_LABELLED_USERS = 1_620
COLLATERAL_LABELLED_POSTS = 59_300
HARMFUL_USER_SHARE = 0.042
NON_HARMFUL_USER_SHARE = 0.958
HARMFUL_POST_RATIO = 1 / 11
HARMFUL_ATTRIBUTE_MIX = {
    "toxicity": 0.697,
    "profanity": 0.576,
    "sexually_explicit": 0.439,
}

#: Table 2: Perspective threshold -> share of non-harmful users.
TABLE2_NON_HARMFUL_BY_THRESHOLD = {
    0.5: 0.864,
    0.6: 0.918,
    0.7: 0.941,
    0.8: 0.958,
    0.9: 0.973,
}

# --------------------------------------------------------------------------- #
# Campaign parameters (Section 3)
# --------------------------------------------------------------------------- #
CAMPAIGN_DAYS = 129
SNAPSHOT_INTERVAL_HOURS = 4
