"""Registry of all experiments, keyed by experiment id."""

from __future__ import annotations

from typing import Callable

from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline
from repro.experiments import (
    collateral,
    dataset_stats,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    graph_impact,
    impact,
    rejects,
    solutions,
    table1,
    table2,
    table3,
)

#: Every experiment module in presentation order (the order of the paper).
_MODULES = (
    dataset_stats,
    figure1,
    figure7,
    table3,
    figure2,
    figure3,
    impact,
    figure4,
    figure5,
    table1,
    rejects,
    figure6,
    table2,
    collateral,
    graph_impact,
    solutions,
)

#: experiment id -> run callable.
EXPERIMENTS: dict[str, Callable[[ReproPipeline], ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

#: experiment id -> human-readable title.
EXPERIMENT_TITLES: dict[str, str] = {
    module.EXPERIMENT_ID: module.TITLE for module in _MODULES
}


def get_experiment(experiment_id: str) -> Callable[[ReproPipeline], ExperimentResult]:
    """Return the run callable of one experiment."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, pipeline: ReproPipeline) -> ExperimentResult:
    """Run one experiment against ``pipeline``."""
    return get_experiment(experiment_id)(pipeline)


def run_all(pipeline: ReproPipeline) -> list[ExperimentResult]:
    """Run every experiment in paper order."""
    return [module.run(pipeline) for module in _MODULES]
