"""E-SOL — the Section 7 strawman policies, evaluated.

For each alternative to the blanket instance-level reject — media removal,
NSFW tagging, curated block-lists, per-user tagging, repeat-offender
escalation — how much harmful content is suppressed and how many innocent
users are hit.  The paper proposes these qualitatively; this experiment is
the quantitative ablation DESIGN.md calls for.
"""

from __future__ import annotations

from repro.core.solutions import ModerationStrategy
from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "solutions"
TITLE = "Section 7: strawman moderation policies compared"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Evaluate every strawman strategy against the instance-reject baseline."""
    evaluator = pipeline.solution_evaluator
    comparison = evaluator.compare()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Evaluated on the same scope as the collateral-damage analysis.",
    )
    result.rows = [outcome.as_row() for outcome in comparison.outcomes]

    baseline = comparison.outcome(ModerationStrategy.INSTANCE_REJECT)
    per_user = comparison.outcome(ModerationStrategy.PER_USER_TAGGING)
    escalation = comparison.outcome(ModerationStrategy.REPEAT_OFFENDER_ESCALATION)

    result.add_comparison(
        "baseline_collateral_share",
        baseline.collateral_share,
        paper_values.NON_HARMFUL_USER_SHARE,
        unit="%",
        note="instance-level reject blocks mostly innocent users",
    )
    result.add_comparison(
        "per_user_tagging_collateral_share",
        per_user.collateral_share,
        0.0,
        unit="%",
        note="per-user moderation should hit (almost) no innocent users",
    )
    result.add_comparison(
        "per_user_tagging_harmful_coverage",
        per_user.harmful_coverage,
        1.0,
        unit="%",
    )
    result.add_comparison(
        "escalation_collateral_share",
        escalation.collateral_share,
        None,
        unit="%",
        note="repeat-offender escalation trades a little coverage for less collateral",
    )
    result.add_comparison(
        "collateral_reduction_vs_baseline",
        baseline.innocent_block_share - per_user.innocent_block_share,
        None,
        unit="%",
        note="share of innocent users spared by switching to per-user moderation",
    )
    return result
