"""E-GRAPH — the Section 6 federation-graph impact of rejects.

The paper's qualitative argument — a reject can cut an instance off from a
segment of the social graph — quantified: reachable-pair loss, connected
components before/after applying the observed rejects, and the instances
losing the largest share of the network.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "graph_impact"
TITLE = "Section 6: federation-graph impact of rejects"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Quantify the reachability lost to rejects."""
    analyzer = pipeline.graph_analyzer
    impact = analyzer.impact()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes=(
            "The paper discusses this impact qualitatively (Section 6); the "
            "measured values quantify it on the synthetic federation graph."
        ),
    )
    result.rows = [
        {"metric": "nodes", "value": impact.nodes},
        {"metric": "federation_edges", "value": impact.federation_edges},
        {"metric": "reject_edges", "value": impact.reject_edges},
        {"metric": "components_before", "value": impact.components_before},
        {"metric": "components_after", "value": impact.components_after},
        {"metric": "reachable_pairs_before", "value": impact.baseline_reachable_pairs},
        {"metric": "reachable_pairs_after", "value": impact.post_reject_reachable_pairs},
    ]
    for domain, loss in impact.most_affected(10):
        result.rows.append({"metric": f"loss[{domain}]", "value": round(loss, 4)})

    result.add_comparison(
        "pair_loss_share",
        impact.pair_loss_share,
        None,
        unit="%",
        note="share of reachable instance pairs severed by rejects",
    )
    mean_loss = (
        sum(impact.reachability_loss.values()) / len(impact.reachability_loss)
        if impact.reachability_loss
        else 0.0
    )
    result.add_comparison(
        "mean_rejected_instance_reachability_loss",
        mean_loss,
        None,
        unit="%",
        note="average share of the network a rejected instance loses",
    )
    result.add_comparison(
        "rejects_fragment_graph",
        1.0 if impact.components_after >= impact.components_before else 0.0,
        1.0,
        note="rejects never increase connectivity",
    )
    return result
