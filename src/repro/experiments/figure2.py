"""E-FIG2 — Figure 2: instances targeted by each SimplePolicy action.

For every SimplePolicy action: how many instances it targets (split into
Pleroma and non-Pleroma) and the users on the targeted Pleroma instances.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "figure2"
TITLE = "Figure 2: instances targeted per SimplePolicy action"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Figure 2."""
    analyzer = pipeline.simplepolicy_analyzer
    breakdown = analyzer.full_breakdown()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Sorted by the number of targeted instances (the paper's X order).",
    )
    result.rows = [row.as_row() for row in breakdown]

    by_action = {row.action: row for row in breakdown}
    reject = by_action.get("reject")
    result.add_comparison(
        "reject_targets_most_instances",
        1.0 if breakdown and breakdown[0].action == "reject" else 0.0,
        1.0,
        note="reject is the most widely targeted action in the paper",
    )
    if reject is not None and reject.targeted_instances:
        result.add_comparison(
            "non_pleroma_share_of_reject_targets",
            reject.targeted_non_pleroma / reject.targeted_instances,
            paper_values.REJECTED_NON_PLEROMA_INSTANCES
            / paper_values.REJECTED_UNIQUE_INSTANCES,
            unit="%",
        )
    result.add_comparison(
        "media_removal_user_share",
        analyzer.media_removal_user_share(),
        paper_values.MEDIA_REMOVAL_USER_SHARE,
        unit="%",
        note="users on instances targeted by media_removal",
    )
    return result
