"""E-FIG3 — Figure 3: instances applying each SimplePolicy action.

For every SimplePolicy action: how many instances apply it, with the users
on the instances they target, plus the action's share of all moderation
events (the paper: reject alone is 62.8% of events).
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "figure3"
TITLE = "Figure 3: instances applying each SimplePolicy action"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Figure 3."""
    analyzer = pipeline.simplepolicy_analyzer
    breakdown = sorted(
        analyzer.full_breakdown(), key=lambda row: (-row.targeting_instances, row.action)
    )
    shares = analyzer.action_event_shares()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Sorted by the number of instances applying each action.",
    )
    for row in breakdown:
        data = row.as_row()
        data["event_share"] = shares.get(row.action, 0.0)
        result.rows.append(data)

    result.add_comparison(
        "simplepolicy_reject_adoption",
        analyzer.reject_adoption_share(),
        paper_values.SIMPLEPOLICY_REJECT_ADOPTION,
        unit="%",
        note="share of SimplePolicy instances applying reject",
    )
    result.add_comparison(
        "reject_event_share",
        shares.get("reject", 0.0),
        paper_values.REJECT_EVENT_SHARE,
        unit="%",
    )
    result.add_comparison(
        "reject_applied_by_most_instances",
        1.0 if breakdown and breakdown[0].action == "reject" else 0.0,
        1.0,
    )
    return result
