"""E-REJ — the Section 4.2 rejected-instance scalars.

Unique rejected instances (Pleroma vs non-Pleroma), the concentration of
rejects, the posts-vs-rejects correlation, the (absence of) retaliation,
and the categorical annotation of rejected instances.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "rejects"
TITLE = "Section 4.2: characterising rejected instances"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate the Section 4.2 scalars."""
    analyzer = pipeline.reject_analyzer
    summary = analyzer.summary()
    annotation = pipeline.annotator.annotate_rejected()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes=(
            "Absolute rejected-instance counts scale with the scenario; the "
            "shares, correlations and annotation mix are the comparable values."
        ),
    )
    result.rows = [
        {"metric": "rejected_total", "value": summary.rejected_total},
        {"metric": "rejected_pleroma", "value": summary.rejected_pleroma},
        {"metric": "rejected_non_pleroma", "value": summary.rejected_non_pleroma},
        {"metric": "annotated_instances", "value": annotation.annotatable_instances},
    ]
    for category, count in sorted(annotation.category_counts.items()):
        result.rows.append({"metric": f"annotated_{category}", "value": count})

    result.add_comparison(
        "non_pleroma_share_of_rejected",
        summary.rejected_non_pleroma / summary.rejected_total if summary.rejected_total else 0.0,
        paper_values.REJECTED_NON_PLEROMA_INSTANCES / paper_values.REJECTED_UNIQUE_INSTANCES,
        unit="%",
    )
    result.add_comparison(
        "rejected_pleroma_share",
        summary.rejected_pleroma_share,
        paper_values.REJECTED_PLEROMA_SHARE,
        unit="%",
    )
    result.add_comparison(
        "rejected_user_share",
        summary.rejected_user_share,
        paper_values.REJECTED_USER_SHARE,
        unit="%",
    )
    result.add_comparison(
        "share_rejected_by_fewer_than_10",
        summary.share_rejected_by_fewer_than,
        paper_values.REJECTED_BY_FEWER_THAN_10_SHARE,
        unit="%",
        note="absolute threshold; depends on the number of rejecting instances",
    )
    result.add_comparison(
        "elite_share_above_20_rejects",
        summary.elite_share,
        paper_values.ELITE_REJECTED_SHARE,
        unit="%",
        note="absolute threshold; depends on the number of rejecting instances",
    )
    result.add_comparison(
        "spearman_posts_vs_rejects",
        summary.spearman_posts_vs_rejects,
        paper_values.SPEARMAN_POSTS_VS_REJECTS,
        note="weak positive correlation expected",
    )
    result.add_comparison(
        "spearman_retaliation",
        summary.spearman_retaliation,
        paper_values.SPEARMAN_RETALIATION,
        note="no retaliation: correlation near zero or negative",
    )
    result.add_comparison(
        "annotated_share",
        annotation.annotatable_share,
        paper_values.ANNOTATED_SHARE,
        unit="%",
    )
    result.add_comparison(
        "annotated_harmful_category_share",
        annotation.harmful_category_share,
        paper_values.ANNOTATED_HARMFUL_CATEGORY_SHARE,
        unit="%",
    )
    result.add_comparison(
        "annotated_general_share",
        annotation.general_share,
        paper_values.ANNOTATED_GENERAL_SHARE,
        unit="%",
    )
    return result
