"""E-FIG7 — Figure 7: the entire policy spectrum.

The same quantities as Figure 1 but for every observed policy type,
including the admin-created (custom) policies.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "figure7"
TITLE = "Figure 7: full policy spectrum (instance and user shares)"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Figure 7."""
    analyzer = pipeline.policy_analyzer
    prevalence = analyzer.prevalence()
    counts = analyzer.policy_type_counts()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Every observed policy type, in-built and admin-created.",
    )
    result.rows = [row.as_row() for row in prevalence]

    result.add_comparison(
        "distinct_policy_types",
        counts["total"],
        paper_values.POLICY_TYPES_TOTAL,
        note="scale-dependent: rare policies only appear at larger scales",
    )
    result.add_comparison(
        "builtin_policy_types",
        counts["builtin"],
        paper_values.POLICY_TYPES_BUILTIN,
    )
    result.add_comparison(
        "custom_policy_types",
        counts["custom"],
        paper_values.POLICY_TYPES_CUSTOM,
    )
    if prevalence:
        result.add_comparison(
            "most_enabled_policy_is_objectage",
            1.0 if prevalence[0].policy == "ObjectAgePolicy" else 0.0,
            1.0,
        )
    return result
