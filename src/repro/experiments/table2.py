"""E-TAB2 — Table 2: non-harmful user share across Perspective thresholds.

The robustness check of the collateral-damage result: whatever threshold is
used to call a user harmful, the large majority of users on rejected
instances are not.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "table2"
TITLE = "Table 2: non-harmful user share vs Perspective threshold"

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Table 2."""
    analyzer = pipeline.collateral_analyzer
    sweep = analyzer.threshold_sweep(THRESHOLDS)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Share of non-harmful users on rejected Pleroma instances.",
    )
    for threshold in THRESHOLDS:
        measured = sweep[threshold]
        paper = paper_values.TABLE2_NON_HARMFUL_BY_THRESHOLD[threshold]
        result.rows.append(
            {
                "threshold": threshold,
                "non_harmful_share": measured,
                "paper_non_harmful_share": paper,
            }
        )
        result.add_comparison(
            f"non_harmful_at_{threshold}", measured, paper, unit="%"
        )

    # The sweep must be monotonically non-decreasing with the threshold.
    values = [sweep[t] for t in THRESHOLDS]
    monotone = all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    result.add_comparison("sweep_is_monotone", 1.0 if monotone else 0.0, 1.0)
    return result
