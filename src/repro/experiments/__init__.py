"""Experiments: one module per figure/table of the paper.

Each experiment regenerates the rows/series of one paper artefact from the
measurement pipeline (synthetic fediverse → crawl → analysis) and compares
the measured values against the numbers reported in the paper.  Absolute
counts depend on the chosen scenario scale; percentages, orderings and
correlations are the quantities expected to match in shape.

Run everything from the command line with ``pleroma-repro`` (see
:mod:`repro.experiments.runner`) or call the per-experiment ``run``
functions directly.
"""

from repro.experiments.base import Comparison, ExperimentResult
from repro.experiments.pipeline import ReproPipeline, get_pipeline
from repro.experiments import paper_values
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all, run_experiment

__all__ = [
    "Comparison",
    "ExperimentResult",
    "ReproPipeline",
    "get_pipeline",
    "paper_values",
    "EXPERIMENTS",
    "get_experiment",
    "run_all",
    "run_experiment",
]
