"""E-IMPACT — the Section 4.1 aggregate impact scalars.

97.7% of users and 97.8% of posts are impacted by policies; the reject
action alone affects 86.2% of users and 88.5% of posts, makes up 62.8% of
moderation events, and rejected instances are 80% of moderated instances.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "impact"
TITLE = "Section 4.1: aggregate moderation impact"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate the Section 4.1 impact scalars."""
    impact = pipeline.policy_analyzer.impact()
    counts = pipeline.policy_analyzer.policy_type_counts()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes=(
            "Impact is computed from executed policy configurations: an "
            "instance is impacted when targeted by a policy action or when "
            "a federation peer enables a policy."
        ),
    )
    result.rows = [
        {"metric": "users_total", "value": impact.users_total},
        {"metric": "posts_total", "value": impact.posts_total},
        {"metric": "users_impacted", "value": impact.users_impacted},
        {"metric": "posts_impacted", "value": impact.posts_impacted},
        {"metric": "users_rejected", "value": impact.users_rejected},
        {"metric": "posts_rejected", "value": impact.posts_rejected},
        {"metric": "moderation_events", "value": impact.moderation_events},
        {"metric": "reject_events", "value": impact.reject_events},
        {"metric": "moderated_instances", "value": impact.moderated_instances},
        {"metric": "rejected_instances", "value": impact.rejected_instances},
    ]

    result.add_comparison(
        "user_impact_share",
        impact.user_impact_share,
        paper_values.USERS_IMPACTED_SHARE,
        unit="%",
    )
    result.add_comparison(
        "post_impact_share",
        impact.post_impact_share,
        paper_values.POSTS_IMPACTED_SHARE,
        unit="%",
    )
    result.add_comparison(
        "user_reject_share",
        impact.user_reject_share,
        paper_values.USERS_REJECTED_SHARE,
        unit="%",
    )
    result.add_comparison(
        "post_reject_share",
        impact.post_reject_share,
        paper_values.POSTS_REJECTED_SHARE,
        unit="%",
    )
    result.add_comparison(
        "reject_event_share",
        impact.reject_event_share,
        paper_values.REJECT_EVENT_SHARE,
        unit="%",
    )
    result.add_comparison(
        "rejected_of_moderated_share",
        impact.rejected_instance_share,
        paper_values.REJECTED_OF_MODERATED_SHARE,
        unit="%",
    )
    result.add_comparison(
        "distinct_policy_types",
        counts["total"],
        paper_values.POLICY_TYPES_TOTAL,
        note="scale-dependent",
    )
    return result
