"""E-TAB1 — Table 1: the five most rejected Pleroma instances.

The head of the reject distribution: rejects received, users, posts and the
average Perspective scores of each instance.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "table1"
TITLE = "Table 1: top-5 rejected Pleroma instances"


def run(pipeline: ReproPipeline, limit: int = 5) -> ExperimentResult:
    """Regenerate Table 1."""
    analyzer = pipeline.reject_analyzer
    top = analyzer.top_rejected(limit=limit, pleroma_only=True)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes=(
            "The synthetic elite instances are named after the paper's (with "
            "reserved example domains), so rows are directly comparable."
        ),
    )
    result.rows = [row.as_row() for row in top]

    paper_head = paper_values.TABLE1
    # The elite instances should dominate the top of the ranking.
    elite_prefixes = ("freespeech", "kiwifarms", "spinster", "neckbeard", "poa")
    measured_elite = sum(
        1
        for row in top
        if any(row.domain.startswith(prefix) for prefix in elite_prefixes)
    )
    result.add_comparison(
        "elite_instances_in_top5",
        measured_elite,
        5,
        note="how many of the named elite instances reach the measured top-5",
    )
    if top:
        head = [row.domain for row in top[:2]]
        result.add_comparison(
            "most_rejected_is_freespeech",
            1.0 if any(domain.startswith("freespeech") for domain in head) else 0.0,
            1.0,
            note="freespeech-extremist should top (or nearly top) the ranking",
        )
        scored = [row for row in top if row.toxicity is not None]
        if scored:
            result.add_comparison(
                "top5_mean_toxicity",
                sum(row.toxicity for row in scored) / len(scored),
                sum(r["toxicity"] for r in paper_head if r["toxicity"] is not None)
                / sum(1 for r in paper_head if r["toxicity"] is not None),
            )
    return result
