"""E-FIG5 — Figure 5: rejected instances, their users and rejects.

Every rejected Pleroma instance ordered by rejects received, with its user
count — the view that shows a few heavily-rejected instances holding most
of the users.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "figure5"
TITLE = "Figure 5: rejected Pleroma instances with user counts and rejects"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Figure 5."""
    analyzer = pipeline.reject_analyzer
    rows = analyzer.rejected_pleroma_instances()
    summary = analyzer.summary()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Sorted by rejects received (the paper's X order).",
    )
    result.rows = [
        {
            "domain": row.domain,
            "rejects": row.rejects_received,
            "users": row.user_count,
            "posts": row.post_count,
        }
        for row in rows
    ]

    result.add_comparison(
        "rejected_pleroma_share",
        summary.rejected_pleroma_share,
        paper_values.REJECTED_PLEROMA_SHARE,
        unit="%",
    )
    result.add_comparison(
        "rejected_user_share",
        summary.rejected_user_share,
        paper_values.REJECTED_USER_SHARE,
        unit="%",
    )
    result.add_comparison(
        "rejected_post_share",
        summary.rejected_post_share,
        paper_values.REJECTED_POST_SHARE,
        unit="%",
    )
    result.add_comparison(
        "share_rejected_by_fewer_than_10",
        summary.share_rejected_by_fewer_than,
        paper_values.REJECTED_BY_FEWER_THAN_10_SHARE,
        unit="%",
        note="threshold of 10 is absolute, so this depends on scenario scale",
    )
    return result
