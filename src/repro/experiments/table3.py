"""E-TAB3 — Table 3 / Appendix A: the in-built policies.

For every in-built policy: its description, how many instances enable it and
how many users sit on those instances.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline
from repro.mrf.registry import BUILTIN_POLICY_DESCRIPTIONS

EXPERIMENT_ID = "table3"
TITLE = "Table 3: in-built policies, enabling instances and their users"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Table 3."""
    analyzer = pipeline.policy_analyzer
    prevalence = {row.policy: row for row in analyzer.prevalence()}

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Counts are scale-dependent; the ordering is the comparable shape.",
    )

    for policy, (paper_instances, paper_users) in paper_values.POLICY_TABLE.items():
        row = prevalence.get(policy)
        result.rows.append(
            {
                "policy": policy,
                "description": BUILTIN_POLICY_DESCRIPTIONS.get(policy, ""),
                "instances": row.instance_count if row else 0,
                "users": row.user_count if row else 0,
                "paper_instances": paper_instances,
                "paper_users": paper_users,
            }
        )

    # Rank correlation between the paper's instance counts and the measured
    # ones is the headline shape comparison for this table.
    measured_ranked = sorted(
        paper_values.POLICY_TABLE,
        key=lambda name: -(prevalence[name].instance_count if name in prevalence else 0),
    )
    paper_ranked = sorted(
        paper_values.POLICY_TABLE, key=lambda name: -paper_values.POLICY_TABLE[name][0]
    )
    agreements = sum(
        1
        for index, name in enumerate(paper_ranked[:10])
        if name in measured_ranked[: max(12, index + 3)]
    )
    result.add_comparison(
        "top10_policies_recovered",
        agreements,
        10,
        note="paper's 10 most-enabled policies found near the top of the measured ranking",
    )
    coverage = sum(1 for name in paper_values.POLICY_TABLE if name in prevalence)
    result.add_comparison(
        "table3_policies_observed",
        coverage,
        len(paper_values.POLICY_TABLE),
        note="scale-dependent: rarely enabled policies need larger scenarios",
    )
    return result
