"""E-FIG4 — Figure 4: rejected instances vs their Perspective scores.

Every rejected Pleroma instance, ordered by the number of rejects it
received, with its average toxicity, profanity and sexually-explicit scores
across all collected posts.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "figure4"
TITLE = "Figure 4: rejected Pleroma instances, rejects and Perspective scores"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Figure 4."""
    analyzer = pipeline.reject_analyzer
    rows = analyzer.rejected_pleroma_instances(with_scores=True)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Sorted by rejects received; scores are NA without collected posts.",
    )
    result.rows = [row.as_row() for row in rows]

    scored = [row for row in rows if row.toxicity is not None]
    if scored:
        mean_toxicity = sum(row.toxicity for row in scored) / len(scored)
        mean_profanity = sum(row.profanity for row in scored) / len(scored)
        mean_sexual = sum(row.sexually_explicit for row in scored) / len(scored)
        # Paper's Figure 4 shows instance means mostly in the 0.0–0.4 band,
        # with toxicity the typically-highest attribute; compare against the
        # Table 1 head averages as the reference points.
        paper_mean_toxicity = 0.225  # mean of the Table 1 toxicity column
        paper_mean_profanity = 0.193
        paper_mean_sexual = 0.153
        result.add_comparison("mean_toxicity", mean_toxicity, paper_mean_toxicity)
        result.add_comparison("mean_profanity", mean_profanity, paper_mean_profanity)
        result.add_comparison("mean_sexually_explicit", mean_sexual, paper_mean_sexual)
        result.add_comparison(
            "instances_with_scores",
            len(scored),
            None,
            note="rejected Pleroma instances with collected posts",
        )
    result.add_comparison(
        "rejected_pleroma_instances",
        len(rows),
        paper_values.REJECTED_PLEROMA_INSTANCES,
        note="absolute count is scale-dependent",
    )
    return result
