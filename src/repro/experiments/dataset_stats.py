"""E-STATS — the Section 3 headline dataset statistics.

The paper reports: 9,969 instances discovered (1,534 Pleroma), 1,298
crawlable Pleroma instances (84.6%), the HTTP-status breakdown of the
uncrawlable remainder, 111K users, 24.5M posts (14.5M collected), and that
48.7% of users published at least one post.  Absolute counts scale with the
scenario; the shares are the comparable quantities.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "dataset_stats"
TITLE = "Section 3 dataset statistics"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate the Section 3 dataset statistics."""
    dataset = pipeline.dataset
    stats = dataset.stats()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes=(
            "Absolute counts depend on the scenario scale; shares and the "
            "failure-status breakdown are the paper-comparable quantities."
        ),
    )

    pleroma_total = stats["pleroma_instances"]
    crawlable = stats["crawlable_pleroma_instances"]
    result.rows = [
        {"metric": key, "value": value} for key, value in sorted(stats.items())
    ]

    result.add_comparison(
        "pleroma_share_of_instances",
        stats["pleroma_instances"] / stats["instances_total"] if stats["instances_total"] else 0,
        paper_values.PLEROMA_INSTANCES / paper_values.TOTAL_INSTANCES,
        unit="%",
    )
    result.add_comparison(
        "crawlable_pleroma_share",
        crawlable / pleroma_total if pleroma_total else 0,
        paper_values.CRAWLABLE_SHARE,
        unit="%",
    )

    breakdown = dataset.unreachable_status_breakdown()
    paper_breakdown = paper_values.UNCRAWLABLE_STATUS
    paper_uncrawlable_total = sum(paper_breakdown.values())
    measured_uncrawlable_total = sum(breakdown.values())
    for status, paper_count in sorted(paper_breakdown.items()):
        measured = breakdown.get(status, 0)
        result.add_comparison(
            f"uncrawlable_{status}_share",
            measured / measured_uncrawlable_total if measured_uncrawlable_total else 0,
            paper_count / paper_uncrawlable_total,
            unit="%",
            note="share of uncrawlable Pleroma instances",
        )

    # Active users: computed over instances whose timeline could be read, so
    # the denominator matches what the crawler could observe.
    readable = [
        record
        for record in dataset.reachable_pleroma_instances()
        if record.timeline_reachable
    ]
    readable_users = sum(record.user_count for record in readable)
    observed_posters = len(
        {user.handle for user in dataset.users.values() if user.domain in {r.domain for r in readable}}
    )
    result.add_comparison(
        "active_user_share",
        observed_posters / readable_users if readable_users else 0,
        paper_values.USERS_WITH_POSTS_SHARE,
        unit="%",
        note="users with >=1 collected post on timeline-readable instances",
    )
    result.add_comparison(
        "collected_post_share",
        stats["collected_posts"] / stats["total_status_count"]
        if stats["total_status_count"]
        else 0,
        paper_values.COLLECTED_POSTS / paper_values.TOTAL_POSTS,
        unit="%",
        note="collected posts vs reported status counts",
    )
    result.add_comparison(
        "policy_exposure_share",
        pipeline.policy_analyzer.policy_exposure_share(),
        paper_values.POLICY_EXPOSURE_SHARE,
        unit="%",
    )
    result.add_comparison(
        "instances_with_posts_share",
        len([r for r in dataset.reachable_pleroma_instances() if dataset.posts_from(r.domain)])
        / crawlable
        if crawlable
        else 0,
        paper_values.INSTANCES_WITH_POSTS / paper_values.CRAWLABLE_PLEROMA,
        unit="%",
    )
    return result
