"""The shared measurement pipeline behind every experiment.

One :class:`ReproPipeline` owns the full chain — synthetic fediverse →
measurement campaign → dataset → analyzers — for one scenario and seed.
Because generating and crawling a fediverse is the expensive part, pipelines
are cached per (scenario, seed) through :func:`get_pipeline`, so running all
experiments (or all benchmarks) reuses one crawl per scenario.
"""

from __future__ import annotations

from functools import cached_property

from repro.core.annotation import InstanceAnnotator
from repro.core.collateral import CollateralAnalyzer
from repro.core.federation_graph import FederationGraphAnalyzer
from repro.core.harmfulness import HarmfulnessLabeller
from repro.core.policy_analysis import PolicyAnalyzer
from repro.core.reject_analysis import RejectAnalyzer
from repro.core.simplepolicy_analysis import SimplePolicyAnalyzer
from repro.core.solutions import SolutionEvaluator
from repro.crawler.campaign import CampaignConfig, CrawlResult, MeasurementCampaign
from repro.datasets.store import Dataset
from repro.faults import ResilienceConfig
from repro.perspective.client import PerspectiveClient
from repro.synth.generator import GeneratedFediverse
from repro.synth.scenario import build_scenario, scenario_config


class ReproPipeline:
    """Generate, crawl and analyse one synthetic fediverse."""

    def __init__(
        self,
        scenario: str = "small",
        seed: int = 42,
        campaign_days: float | None = 2.0,
        **synth_overrides,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.synth_overrides = synth_overrides
        config = scenario_config(scenario, seed=seed, **synth_overrides)
        self.campaign_days = campaign_days if campaign_days is not None else config.campaign_days
        self._config = config

    # ------------------------------------------------------------------ #
    # Pipeline stages (each cached after the first call)
    # ------------------------------------------------------------------ #
    @cached_property
    def fediverse(self) -> GeneratedFediverse:
        """The generated synthetic fediverse."""
        return build_scenario(self.scenario, seed=self.seed, **self.synth_overrides)

    @cached_property
    def crawl(self) -> CrawlResult:
        """The measurement-campaign output over the generated fediverse.

        A scenario with a fault profile (e.g. ``chaos``) is measured
        through the fault injector with the resilient client; for the
        ``none`` profile the campaign runs on the plain engine exactly as
        before (the inert plan wraps nothing and no retry policy exists).
        """
        faults = self.fediverse.fault_spec()
        campaign = MeasurementCampaign(
            self.fediverse.registry,
            CampaignConfig(
                duration_days=self.campaign_days,
                snapshot_interval_hours=self._config.snapshot_interval_hours,
            ),
            faults=None if faults.inert else faults,
            resilience=None if faults.inert else ResilienceConfig.default(),
        )
        return campaign.run()

    @property
    def dataset(self) -> Dataset:
        """The crawled dataset every analysis runs on."""
        return self.crawl.dataset

    # ------------------------------------------------------------------ #
    # Analyzers (shared so Perspective scores are computed once)
    # ------------------------------------------------------------------ #
    @cached_property
    def perspective(self) -> PerspectiveClient:
        """The shared Perspective substitute client (score cache included)."""
        return PerspectiveClient()

    @cached_property
    def labeller(self) -> HarmfulnessLabeller:
        """The shared harmfulness labeller."""
        return HarmfulnessLabeller(self.dataset, client=self.perspective)

    @cached_property
    def policy_analyzer(self) -> PolicyAnalyzer:
        """Policy prevalence / impact analyzer."""
        return PolicyAnalyzer(self.dataset)

    @cached_property
    def simplepolicy_analyzer(self) -> SimplePolicyAnalyzer:
        """SimplePolicy action-breakdown analyzer."""
        return SimplePolicyAnalyzer(self.dataset)

    @cached_property
    def reject_analyzer(self) -> RejectAnalyzer:
        """Rejected-instance analyzer."""
        return RejectAnalyzer(self.dataset, labeller=self.labeller)

    @cached_property
    def collateral_analyzer(self) -> CollateralAnalyzer:
        """Collateral-damage analyzer."""
        return CollateralAnalyzer(self.dataset, labeller=self.labeller)

    @cached_property
    def annotator(self) -> InstanceAnnotator:
        """Rejected-instance category annotator."""
        return InstanceAnnotator(self.dataset, labeller=self.labeller)

    @cached_property
    def graph_analyzer(self) -> FederationGraphAnalyzer:
        """Federation-graph analyzer."""
        return FederationGraphAnalyzer(self.dataset)

    @cached_property
    def solution_evaluator(self) -> SolutionEvaluator:
        """Strawman-solution evaluator."""
        return SolutionEvaluator(self.dataset, labeller=self.labeller)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ReproPipeline(scenario={self.scenario!r}, seed={self.seed})"


#: Cache of pipelines keyed by (scenario, seed, campaign_days).
_PIPELINES: dict[tuple[str, int, float], ReproPipeline] = {}


def get_pipeline(
    scenario: str = "small", seed: int = 42, campaign_days: float = 2.0
) -> ReproPipeline:
    """Return a cached pipeline for (scenario, seed, campaign_days)."""
    key = (scenario, seed, campaign_days)
    if key not in _PIPELINES:
        _PIPELINES[key] = ReproPipeline(
            scenario=scenario, seed=seed, campaign_days=campaign_days
        )
    return _PIPELINES[key]


def clear_pipeline_cache() -> None:
    """Drop every cached pipeline (used by tests that need isolation)."""
    _PIPELINES.clear()
