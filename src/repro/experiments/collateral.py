"""E-COLL — the Section 5 collateral-damage scalars.

Only 4.2% of users on rejected Pleroma instances share harmful posts; the
other 95.8% are blocked by association.  Includes the harmful:non-harmful
post ratio and the attribute mix among harmful users.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "collateral"
TITLE = "Section 5: collateral damage on rejected instances"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate the Section 5 scalars."""
    analyzer = pipeline.collateral_analyzer
    summary = analyzer.summary()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Computed at the paper's 0.8 Perspective threshold.",
    )
    result.rows = [
        {"metric": "rejected_pleroma_instances", "value": summary.rejected_pleroma_instances},
        {"metric": "rejected_with_posts", "value": summary.rejected_with_posts},
        {"metric": "single_user_instances", "value": summary.single_user_instances},
        {"metric": "analysed_instances", "value": summary.analysed_instances},
        {"metric": "labelled_users", "value": summary.labelled_users},
        {"metric": "labelled_posts", "value": summary.labelled_posts},
        {"metric": "harmful_users", "value": summary.harmful_users},
        {"metric": "harmful_posts", "value": summary.harmful_posts},
    ]

    result.add_comparison(
        "rejected_with_posts_share",
        summary.rejected_with_posts_share,
        paper_values.REJECTED_WITH_POSTS_SHARE,
        unit="%",
    )
    result.add_comparison(
        "single_user_share",
        summary.single_user_share,
        paper_values.SINGLE_USER_REJECTED_SHARE,
        unit="%",
    )
    result.add_comparison(
        "harmful_user_share",
        summary.harmful_user_share,
        paper_values.HARMFUL_USER_SHARE,
        unit="%",
    )
    result.add_comparison(
        "non_harmful_user_share",
        summary.non_harmful_user_share,
        paper_values.NON_HARMFUL_USER_SHARE,
        unit="%",
    )
    result.add_comparison(
        "harmful_post_ratio",
        summary.harmful_post_ratio,
        paper_values.HARMFUL_POST_RATIO,
        note="harmful : non-harmful posts (paper ~1:11)",
    )
    for attribute, paper_share in paper_values.HARMFUL_ATTRIBUTE_MIX.items():
        result.add_comparison(
            f"harmful_{attribute}_share",
            summary.attribute_shares.get(attribute, 0.0),
            paper_share,
            unit="%",
            note="share of harmful users flagged on this attribute",
        )
    return result
