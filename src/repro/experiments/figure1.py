"""E-FIG1 — Figure 1: the top-15 policy types.

For each of the 15 most-enabled policies: the share of instances that enable
it and the share of the user population on those instances.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "figure1"
TITLE = "Figure 1: top-15 policy types by instance share"


def run(pipeline: ReproPipeline, limit: int = 15) -> ExperimentResult:
    """Regenerate Figure 1."""
    analyzer = pipeline.policy_analyzer
    prevalence = analyzer.prevalence()
    top = prevalence[:limit]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Sorted by the share of instances enabling each policy.",
    )
    others_instances = sum(row.instance_share for row in prevalence[limit:])
    others_users = sum(row.user_share for row in prevalence[limit:])
    result.rows = [row.as_row() for row in top]
    if prevalence[limit:]:
        result.rows.append(
            {
                "policy": "Others",
                "instances": sum(row.instance_count for row in prevalence[limit:]),
                "instance_share": others_instances,
                "users": sum(row.user_count for row in prevalence[limit:]),
                "user_share": others_users,
                "builtin": False,
            }
        )

    # Shape check: the paper's top policies in order.
    measured_order = [row.policy for row in top]
    for rank, policy in enumerate(paper_values.TOP_POLICY_ORDER):
        measured_rank = (
            measured_order.index(policy) if policy in measured_order else -1
        )
        result.add_comparison(
            f"rank_of_{policy}",
            measured_rank,
            rank,
            note="position in the instance-share ranking (0-based)",
        )

    total_crawlable = paper_values.CRAWLABLE_PLEROMA
    for policy in ("ObjectAgePolicy", "TagPolicy", "SimplePolicy"):
        paper_count = paper_values.POLICY_TABLE[policy][0]
        measured = next((row.instance_share for row in prevalence if row.policy == policy), 0.0)
        result.add_comparison(
            f"{policy}_instance_share",
            measured,
            paper_count / total_crawlable,
            unit="%",
        )
    return result
