"""E-FIG6 — Figure 6: harmful vs non-harmful users on rejected instances.

For each rejected Pleroma instance entering the collateral analysis: how
many of its users are toxic, profane, sexually explicit, or not harmful at
all.  The dominance of the non-harmful bars is the collateral-damage story.
"""

from __future__ import annotations

from repro.experiments import paper_values
from repro.experiments.base import ExperimentResult
from repro.experiments.pipeline import ReproPipeline

EXPERIMENT_ID = "figure6"
TITLE = "Figure 6: per-instance harmful vs non-harmful users"


def run(pipeline: ReproPipeline) -> ExperimentResult:
    """Regenerate Figure 6."""
    analyzer = pipeline.collateral_analyzer
    rows = analyzer.per_instance_breakdown()

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        notes="Rejected Pleroma instances with posts, single-user instances excluded.",
    )
    result.rows = [row.as_row() for row in rows]

    total_users = sum(row.labelled_users for row in rows)
    non_harmful = sum(row.non_harmful_users for row in rows)
    result.add_comparison(
        "non_harmful_user_share",
        non_harmful / total_users if total_users else 0.0,
        paper_values.NON_HARMFUL_USER_SHARE,
        unit="%",
    )
    instances_dominated_by_non_harmful = sum(
        1 for row in rows if row.non_harmful_users > row.harmful_users
    )
    result.add_comparison(
        "instances_dominated_by_non_harmful",
        instances_dominated_by_non_harmful / len(rows) if rows else 0.0,
        1.0,
        unit="%",
        note="in the paper virtually every bar is dominated by non-harmful users",
    )
    result.add_comparison("analysed_instances", len(rows), None)
    return result
