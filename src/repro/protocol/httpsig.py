"""HTTP-signature verification cost model.

Every real federated delivery arrives as a signed HTTP request: the
receiver fetches the sending actor's public key (expensive — a document
fetch plus key parsing) and verifies the signature over the request
(cheap, but paid per delivery).  Pleroma-family servers amortise the
fetch with an actor-key cache; the batched delivery engine should see the
same amortisation, and the naive per-delivery path should pay full price.

This module models that cost structure deterministically:

* :func:`derive_actor_key` — the stand-in for the key fetch.  A key is
  the iterated SHA-256 of the actor handle; the iteration count makes
  derivation measurably expensive in real wall-clock terms (the property
  the amortisation benchmark gates on) while staying deterministic.
* :func:`sign_activity` — HMAC-SHA256 over the activity id with the
  actor's key.  The generator does not attach signatures (an unsigned
  activity verifies successfully at full verification cost); tests attach
  real or forged signatures via :data:`SIGNATURE_FIELD` to exercise the
  rejection path.
* :class:`ActorKeyCache` — bounded handle→key cache with hit/miss
  counters, shared across deliveries by the batched engine.
* :class:`HttpSignatureVerifier` — charges each derivation and each
  verification to a **dedicated** :class:`SimulationClock`.  The cost
  clock is private to the verifier on purpose: charging the registry
  clock would shift the MRF's ``now`` per batch and diverge across
  sharded workers, breaking engine equivalence.

Everything is inert unless a verifier is attached to the delivery engine,
so Create-only configurations remain bit-identical to the pre-protocol
engine.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.fediverse.clock import SimulationClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.activitypub.activities import Activity

#: Iterations of SHA-256 a key derivation costs.  High enough that deriving
#: per delivery is measurably slower than hitting the cache, low enough that
#: the uncached baseline stays benchmarkable at scenario scale.
KEY_DERIVATION_ROUNDS = 384

#: ``Activity.extra`` key carrying an attached HMAC signature (hex digest).
SIGNATURE_FIELD = "http_signature"

#: Simulated seconds a key derivation (actor fetch + parse) costs.
KEY_DERIVATION_SECONDS = 0.25

#: Simulated seconds one signature verification costs.
SIGNATURE_VERIFY_SECONDS = 0.002


def derive_actor_key(handle: str, rounds: int = KEY_DERIVATION_ROUNDS) -> bytes:
    """Derive the actor's signing key: iterated SHA-256 of the handle."""
    digest = hashlib.sha256(handle.encode("utf-8")).digest()
    for _ in range(rounds - 1):
        digest = hashlib.sha256(digest).digest()
    return digest


def sign_activity(activity: "Activity", key: bytes) -> str:
    """Return the hex HMAC-SHA256 signature of an activity under ``key``."""
    message = f"{activity.activity_id}|{activity.origin_domain}".encode("utf-8")
    return hmac.new(key, message, hashlib.sha256).hexdigest()


class ActorKeyCache:
    """Bounded actor-handle → signing-key cache with hit/miss counters.

    Eviction is insertion-ordered (FIFO), which keeps twin runs
    deterministic regardless of access pattern.
    """

    __slots__ = ("_keys", "maxsize", "rounds", "hits", "misses")

    def __init__(self, maxsize: int = 65536, rounds: int = KEY_DERIVATION_ROUNDS) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._keys: dict[str, bytes] = {}
        self.maxsize = maxsize
        self.rounds = rounds
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._keys)

    def key_for(self, handle: str) -> tuple[bytes, bool]:
        """Return ``(key, was_cached)``, deriving and caching on a miss."""
        key = self._keys.get(handle)
        if key is not None:
            self.hits += 1
            return key, True
        self.misses += 1
        key = derive_actor_key(handle, self.rounds)
        if len(self._keys) >= self.maxsize:
            self._keys.pop(next(iter(self._keys)))
        self._keys[handle] = key
        return key, False

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class SignatureStats:
    """Snapshot of a verifier's counters and charged simulated cost."""

    verified: int
    failures: int
    derivations: int
    cache_hits: int
    simulated_seconds: float

    @property
    def hit_rate(self) -> float:
        """Fraction of key lookups served from the cache."""
        total = self.derivations + self.cache_hits
        return self.cache_hits / total if total else 0.0


class HttpSignatureVerifier:
    """Verifies delivery signatures, charging cost to a private clock.

    ``cache=None`` models the naive server that re-fetches the actor key
    for every delivery — the amortisation baseline.  Pass a (shared)
    :class:`ActorKeyCache` to model the cached fast path.
    """

    __slots__ = (
        "cache",
        "clock",
        "rounds",
        "derivation_seconds",
        "verify_seconds",
        "verified",
        "failures",
        "derivations",
        "cache_hits",
    )

    def __init__(
        self,
        cache: ActorKeyCache | None = None,
        *,
        rounds: int = KEY_DERIVATION_ROUNDS,
        derivation_seconds: float = KEY_DERIVATION_SECONDS,
        verify_seconds: float = SIGNATURE_VERIFY_SECONDS,
    ) -> None:
        self.cache = cache
        self.clock = SimulationClock()
        self.rounds = rounds
        self.derivation_seconds = derivation_seconds
        self.verify_seconds = verify_seconds
        self.verified = 0
        self.failures = 0
        self.derivations = 0
        self.cache_hits = 0

    def verify(self, activity: "Activity") -> bool:
        """Verify one delivery, charging derivation + verification cost.

        Unsigned activities (no :data:`SIGNATURE_FIELD` in ``extra``)
        verify successfully — the generator models well-behaved senders
        and the cost, not forgery.  An attached signature must match the
        actor's derived key.
        """
        handle = activity.actor.handle
        if self.cache is None:
            key = derive_actor_key(handle, self.rounds)
            self.derivations += 1
            self.clock.advance(self.derivation_seconds)
        else:
            key, was_cached = self.cache.key_for(handle)
            if was_cached:
                self.cache_hits += 1
            else:
                self.derivations += 1
                self.clock.advance(self.derivation_seconds)
        self.verified += 1
        self.clock.advance(self.verify_seconds)
        attached = activity.extra.get(SIGNATURE_FIELD)
        if attached is not None and not hmac.compare_digest(
            attached, sign_activity(activity, key)
        ):
            self.failures += 1
            return False
        return True

    def verified_only(self, activities: Iterable["Activity"]) -> list["Activity"]:
        """Verify each delivery, returning the ones that passed."""
        return [activity for activity in activities if self.verify(activity)]

    def stats(self) -> SignatureStats:
        """Return a snapshot of counters and charged simulated seconds."""
        return SignatureStats(
            verified=self.verified,
            failures=self.failures,
            derivations=self.derivations,
            cache_hits=self.cache_hits,
            simulated_seconds=self.clock.elapsed(),
        )
