"""Reply-thread (conversation) helpers.

Mastodon/Pleroma thread replies via ``in_reply_to`` and group them under a
conversation id (the thread root's URI).  Clients prepend the accumulated
participant mentions to each reply, which is exactly the mechanic the
Hellthread policy keys on: deep threads accumulate enough distinct
``@user@domain`` tokens to cross the delist/reject mention floors, while
shallow threads stay under them.  The generator uses these helpers to
build reply storms with that realistic depth→mentions growth.
"""

from __future__ import annotations

from typing import Iterable

from repro.fediverse.post import Post

#: ``Post.extra`` key carrying the thread's conversation id (root URI).
CONVERSATION_FIELD = "conversation"


def conversation_id(root: Post) -> str:
    """Return the conversation id of a thread rooted at ``root``."""
    return root.uri


def mention_block(participants: Iterable[str]) -> str:
    """Render the mention prefix a client prepends to a thread reply.

    ``participants`` are full ``user@domain`` handles; order is preserved
    (callers pass them in thread-accumulation order) and duplicates are
    the caller's responsibility to avoid.
    """
    return " ".join(f"@{handle}" for handle in participants)


def reply_content(participants: Iterable[str], body: str) -> str:
    """Compose a reply's content: accumulated mentions, then the body."""
    mentions = mention_block(participants)
    return f"{mentions} {body}" if mentions else body
