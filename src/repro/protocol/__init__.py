"""Protocol-realism subsystem: boosts, conversations and signed deliveries.

The measured fediverse is not a stream of ``Create`` activities: real MRF
pipelines spend most of their time on boosts (``Announce``), favourites
(``Like``), reply threads and the HTTP-signature verification every
delivery pays before any policy runs.  This package models those protocol
mechanics on top of the existing activity model, following the direction
named in ROADMAP (Epicyon's ``announce.py`` / ``conversation.py`` /
``httpsig.py``):

* :mod:`repro.protocol.announce` — hot-post selection for boost cascades:
  the planted set of posts that re-fan across origins in the ``viral``
  scenario.
* :mod:`repro.protocol.conversation` — reply-thread (conversation)
  helpers: conversation ids and the accumulated mention blocks that make
  deep threads cross the Hellthread mention floors at realistic depth.
* :mod:`repro.protocol.httpsig` — a deterministic HTTP-signature
  verification cost model: per-actor keys derived by iterated hashing
  (the expensive part), per-delivery verification charged to a dedicated
  simulated clock, and an actor-key cache the batched delivery path uses
  to amortise derivations.

Everything here is inert by default: the generator only emits the new
activity types when a scenario turns the corresponding knobs on, and the
delivery engine only verifies signatures when a verifier is attached — so
Create-only configurations stay bit-identical to the pre-protocol engine
(the ``protocol`` bench stage gates this).
"""

from repro.protocol.announce import select_hot_posts
from repro.protocol.conversation import conversation_id, mention_block
from repro.protocol.httpsig import (
    KEY_DERIVATION_ROUNDS,
    SIGNATURE_FIELD,
    ActorKeyCache,
    HttpSignatureVerifier,
    SignatureStats,
    derive_actor_key,
    sign_activity,
)

__all__ = [
    "ActorKeyCache",
    "HttpSignatureVerifier",
    "KEY_DERIVATION_ROUNDS",
    "SIGNATURE_FIELD",
    "SignatureStats",
    "conversation_id",
    "derive_actor_key",
    "mention_block",
    "select_hot_posts",
    "sign_activity",
]
