"""Hot-post selection for boost (``Announce``) cascades.

A viral post is boosted from many origins at once: each boosting origin
re-fans an ``Announce`` of the same object URI to its own peers, so the
hot post's home instance sees engagement arrive from everywhere.  The
generator plants a small pool of hot posts up front (recorded in ground
truth) and lets participating origins sample their boosts from it — the
concentration on a few URIs is what makes the ``viral`` scenario stress
the per-type batch programs rather than the per-post ones.
"""

from __future__ import annotations

import random

from repro.fediverse.post import Visibility
from repro.fediverse.registry import FediverseRegistry


def select_hot_posts(
    registry: FediverseRegistry, rng: random.Random, count: int
) -> list[str]:
    """Sample the URIs of ``count`` public posts to serve as boost targets.

    Candidates are gathered in registry order (deterministic for a given
    seed) across all Pleroma instances; only public posts qualify, since
    only they federate widely enough to go viral.
    """
    candidates = [
        post.uri
        for instance in registry.pleroma_instances()
        for post in instance.local_posts()
        if post.visibility is Visibility.PUBLIC
    ]
    if not candidates or count <= 0:
        return []
    return rng.sample(candidates, min(count, len(candidates)))
